// Tests for the rendering / table / CSV helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "dvq/dvq_scheduler.hpp"
#include "io/csv.hpp"
#include "io/render.hpp"
#include "io/table.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Render, SlotScheduleShowsPlacementsAndWindows) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys);
  const std::string out = render_slot_schedule(sys, sched);
  // One row per task, named.
  for (const Task& t : sys.tasks()) {
    EXPECT_NE(out.find(t.name() + " |"), std::string::npos) << out;
  }
  // Processor digits appear.
  EXPECT_NE(out.find('0'), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(Render, DvqTimelineMarksEarlyYields) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  RenderOptions opts;
  opts.chars_per_slot = 8;
  const std::string out = render_dvq_schedule(sc.system, sched, opts);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
  EXPECT_NE(out.find(')'), std::string::npos);  // early-yield marker
  EXPECT_NE(out.find("A1"), std::string::npos);
}

TEST(Render, DescribeSubtasksListsParameters) {
  const std::string out = describe_subtasks(fig1_periodic());
  EXPECT_NE(out.find("theta"), std::string::npos);
  EXPECT_NE(out.find("grpD"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "12345"});
  const std::string out = t.str();
  std::istringstream is(out);
  std::string line1, sep, line3, line4;
  std::getline(is, line1);
  std::getline(is, sep);
  std::getline(is, line3);
  std::getline(is, line4);
  EXPECT_EQ(line3.size(), line4.size());
  EXPECT_NE(sep.find("---"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(std::int64_t{42}), "42");
  EXPECT_EQ(cell(1.5, 2), "1.50");
  EXPECT_EQ(cell_ratio(1, 2, 3), "0.500");
  EXPECT_THROW((void)cell_ratio(1, 0), ContractViolation);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter w;
  w.header({"x", "y"});
  w.row({"1", "2"});
  w.row({"3", "4,5"});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,\"4,5\"\n");
}

TEST(Csv, RowWidthChecked) {
  CsvWriter w;
  w.header({"x", "y"});
  EXPECT_THROW(w.row({"1"}), ContractViolation);
}

}  // namespace
}  // namespace pfair
