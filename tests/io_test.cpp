// Tests for the rendering / table / CSV helpers.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "dvq/dvq_scheduler.hpp"
#include "io/csv.hpp"
#include "io/export.hpp"
#include "io/json.hpp"
#include "io/render.hpp"
#include "io/table.hpp"
#include "obs/trace.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

TEST(Render, SlotScheduleShowsPlacementsAndWindows) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys);
  const std::string out = render_slot_schedule(sys, sched);
  // One row per task, named.
  for (const Task& t : sys.tasks()) {
    EXPECT_NE(out.find(t.name() + " |"), std::string::npos) << out;
  }
  // Processor digits appear.
  EXPECT_NE(out.find('0'), std::string::npos);
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(Render, DvqTimelineMarksEarlyYields) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  RenderOptions opts;
  opts.chars_per_slot = 8;
  const std::string out = render_dvq_schedule(sc.system, sched, opts);
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P1"), std::string::npos);
  EXPECT_NE(out.find(')'), std::string::npos);  // early-yield marker
  EXPECT_NE(out.find("A1"), std::string::npos);
}

TEST(Render, DescribeSubtasksListsParameters) {
  const std::string out = describe_subtasks(fig1_periodic());
  EXPECT_NE(out.find("theta"), std::string::npos);
  EXPECT_NE(out.find("grpD"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "12345"});
  const std::string out = t.str();
  std::istringstream is(out);
  std::string line1, sep, line3, line4;
  std::getline(is, line1);
  std::getline(is, sep);
  std::getline(is, line3);
  std::getline(is, line4);
  EXPECT_EQ(line3.size(), line4.size());
  EXPECT_NE(sep.find("---"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  TextTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractViolation);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(std::int64_t{42}), "42");
  EXPECT_EQ(cell(1.5, 2), "1.50");
  EXPECT_EQ(cell_ratio(1, 2, 3), "0.500");
  EXPECT_THROW((void)cell_ratio(1, 0), ContractViolation);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter w;
  w.header({"x", "y"});
  w.row({"1", "2"});
  w.row({"3", "4,5"});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,\"4,5\"\n");
}

TEST(Csv, RowWidthChecked) {
  CsvWriter w;
  w.header({"x", "y"});
  EXPECT_THROW(w.row({"1"}), ContractViolation);
}

TEST(ChromeTrace, SlotScheduleEventsMatchPlacements) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys);
  const JsonValue doc = parse_json(export_chrome_trace(sys, sched));
  const JsonValue& evs = doc.at("traceEvents");
  ASSERT_TRUE(evs.is(JsonValue::Kind::kArray));

  std::int64_t placed = 0;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      if (sched.placement(SubtaskRef{k, s}).scheduled()) ++placed;
    }
  }
  std::int64_t complete = 0;
  for (const JsonValue& e : evs.array) {
    ASSERT_EQ(e.at("ph").string, "X");
    ++complete;
  }
  EXPECT_EQ(complete, placed);
}

TEST(ChromeTrace, TidIsThePlacementProcessor) {
  const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
  const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
  const JsonValue doc = parse_json(export_chrome_trace(sc.system, sched));

  // Index expected (name, tid) pairs from the schedule itself.
  std::map<std::string, int> proc_of;
  for (std::int32_t k = 0; k < sc.system.num_tasks(); ++k) {
    const Task& task = sc.system.task(k);
    for (std::int32_t s = 0; s < task.num_subtasks(); ++s) {
      const DvqPlacement& p = sched.placement(SubtaskRef{k, s});
      if (!p.placed) continue;
      proc_of[task.name() + "_" + std::to_string(task.subtask(s).index)] =
          p.proc;
    }
  }
  for (const JsonValue& e : doc.at("traceEvents").array) {
    const auto it = proc_of.find(e.at("name").string);
    ASSERT_NE(it, proc_of.end()) << e.at("name").string;
    EXPECT_EQ(e.at("tid").integer, it->second);
  }
}

TEST(ChromeTrace, CapturedTraceBecomesInstantEvents) {
  const TaskSystem sys = fig6_system();
  RingBufferSink sink(1 << 16);
  SfqOptions opts;
  opts.trace = &sink;
  const SlotSchedule sched = schedule_sfq(sys, opts);

  const std::vector<TraceEvent> events = sink.snapshot();
  const JsonValue doc =
      parse_json(export_chrome_trace(sys, sched, events));
  std::int64_t instants = 0, compares = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").string != "i") continue;
    ++instants;
    if (e.at("name").string == "compare") ++compares;
  }
  EXPECT_GT(instants, 0);
  // kCompare events are deliberately excluded from the timeline.
  EXPECT_EQ(compares, 0);
  // Both overloads agree on the complete events.
  const JsonValue plain = parse_json(export_chrome_trace(sys, sched));
  std::int64_t complete = 0;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "X") ++complete;
  }
  EXPECT_EQ(complete,
            static_cast<std::int64_t>(plain.at("traceEvents").array.size()));
}

TEST(ChromeTrace, DropCountBecomesTruncationMetadata) {
  const TaskSystem sys = fig6_system();
  const SlotSchedule sched = schedule_sfq(sys, SfqOptions{});

  // No drops: no truncation marker, no otherData.
  const std::string clean =
      export_chrome_trace(sys, sched, ChromeTraceExtras{});
  EXPECT_EQ(clean.find("trace truncated"), std::string::npos);
  EXPECT_EQ(clean.find("otherData"), std::string::npos);

  // Drops rename the schedule process and record the exact count under
  // otherData, so a truncated timeline is visibly truncated.
  const std::string truncated = export_chrome_trace(
      sys, sched, ChromeTraceExtras{.events_dropped = 37});
  EXPECT_NE(truncated.find("trace truncated: 37 events dropped"),
            std::string::npos);
  const JsonValue doc = parse_json(truncated);
  const JsonValue* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* dropped = other->find("trace_events_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->integer, 37);
}

}  // namespace
}  // namespace pfair
