// Tests for hierarchical Pfair (supertasking).
#include <gtest/gtest.h>

#include <numeric>

#include "super/supertask.hpp"

namespace pfair {
namespace {

TEST(Supertask, InflateWeightFindsLightestCover) {
  // target 5/12 with periods up to 6: candidates 1/2 (0.5), 3/7... with
  // max_period 6 the lightest >= 5/12 is 3/7? (not allowed, p<=6):
  // p=2:1/2, p=3:2/3... p=5: 3/5, p=6: 3/6=1/2; p=12 excluded -> 1/2.
  EXPECT_EQ(inflate_weight(Rational(5, 12), 6), Weight(1, 2));
  // Allowing p=12 recovers the exact weight.
  EXPECT_EQ(inflate_weight(Rational(5, 12), 12), Weight(5, 12));
  EXPECT_EQ(inflate_weight(Rational(1), 4), Weight(1, 1));
  EXPECT_THROW((void)inflate_weight(Rational(5, 4), 8), ContractViolation);
}

TEST(Supertask, RejectsWeightBelowComponentSum) {
  SupertaskGroup g;
  g.name = "S";
  g.components = {Weight(1, 4), Weight(1, 2)};
  g.super_weight = Weight(1, 2);  // 1/2 < 3/4
  EXPECT_THROW((void)run_supertasked({g}, {}, 1), ContractViolation);
}

TEST(Supertask, SingleComponentGroupBehavesLikeTheTask) {
  // One component of weight 1/2 in a supertask of weight 1/2 on one
  // processor, alone: every job must be met (the supertask's Pfair
  // windows align with the component's own).
  SupertaskGroup g;
  g.name = "S";
  g.components = {Weight(1, 2)};
  g.super_weight = Weight(1, 2);
  const SupertaskResult res = run_supertasked({g}, {Weight(1, 2)}, 1, 24);
  EXPECT_TRUE(res.all_components_met());
  EXPECT_EQ(res.free_misses, 0);
}

TEST(Supertask, ComponentSumAccounting) {
  SupertaskGroup g;
  g.components = {Weight(1, 4), Weight(1, 6), Weight(1, 3)};
  EXPECT_EQ(g.component_sum(), Rational(3, 4));
}

TEST(Supertask, WorstCaseGrantsServeJobLevelComponentsOnTheGrid) {
  // Measured property: with *job-level EDF* components (deadline =
  // period), a supertask of exactly the component-sum weight serves
  // every job even under the latest legal grant pattern (every supertask
  // subtask in the last slot of its window) — the window-end supply
  // never lags the fluid rate by a full quantum.  (The classical
  // reweighting requirement in the supertasking literature concerns
  // Pfair-*windowed* components and weight-representation rounding, not
  // this job-level setting.)
  for (std::int64_t p1 = 2; p1 <= 6; ++p1) {
    for (std::int64_t p2 = p1; p2 <= 9; ++p2) {
      for (std::int64_t e1 = 1; e1 < p1; ++e1) {
        const Rational sum = Rational(e1, p1) + Rational(1, p2);
        if (sum > Rational(1)) continue;
        SupertaskGroup g;
        g.name = "S";
        g.components = {Weight(e1, p1), Weight(1, p2)};
        g.super_weight = Weight(sum.num(), sum.den());
        const std::int64_t h = 3 * std::lcm(p1, p2) + 12;
        const JobScheduleResult jr = run_group_worst_case(g, h);
        EXPECT_TRUE(jr.all_met())
            << e1 << "/" << p1 << " + 1/" << p2 << " missed "
            << jr.missed_jobs << "/" << jr.total_jobs;
      }
    }
  }
}

TEST(Supertask, InflationCapacityCost) {
  // When the exact component sum is not representable at the desired
  // period granularity, the supertask weight must round up; the cost is
  // the difference.  5/12 forced to periods <= 6 rounds to 1/2: a 20%
  // rate increase.
  const Rational sum(5, 12);
  const Weight inflated = inflate_weight(sum, 6);
  EXPECT_EQ(inflated, Weight(1, 2));
  EXPECT_EQ(inflated.value() - sum, Rational(1, 12));
  // The inflated group still serves its components under worst-case
  // grants (more supply can only help).
  SupertaskGroup g;
  g.name = "S";
  g.components = {Weight(1, 4), Weight(1, 6)};
  g.super_weight = inflated;
  EXPECT_TRUE(run_group_worst_case(g, 60).all_met());
}

TEST(Supertask, GroupsPlusFreeTasksOnMultiprocessor) {
  SupertaskGroup g1;
  g1.name = "S1";
  g1.components = {Weight(1, 4), Weight(1, 4)};
  g1.super_weight = Weight(1, 2);
  SupertaskGroup g2;
  g2.name = "S2";
  g2.components = {Weight(1, 3), Weight(1, 6)};
  g2.super_weight = Weight(1, 2);
  const SupertaskResult res =
      run_supertasked({g1, g2}, {Weight(1, 2), Weight(1, 2)}, 2, 48);
  EXPECT_EQ(res.free_misses, 0);
  // Both groups' supertasks received their full Pfair share; whether
  // every component met depends on alignment — at least record totals.
  ASSERT_EQ(res.group_jobs.size(), 2u);
  EXPECT_GT(res.group_jobs[0].total_jobs, 0);
}

}  // namespace
}  // namespace pfair
