// Steady-state allocation contract: once an arena-backed simulator has
// warmed up (the arena reached its high-water mark), further
// `schedule_sfq_into` calls perform ZERO heap allocations.  This test
// replaces global operator new/delete with counting versions and pins
// the count across repeated calls — a stronger check than watching
// arena capacity, because it also catches stray std::vector or string
// traffic anywhere in the per-call pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "sched/schedule.hpp"
#include "sched/sfq_scheduler.hpp"
#include "tasks/task.hpp"
#include "tasks/task_system.hpp"
#include "tasks/weight.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t n, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, n) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

// Replacements are per-binary: this file gets its own test executable.
void* operator new(std::size_t n) { return counted_alloc(n, sizeof(void*)); }
void* operator new[](std::size_t n) { return counted_alloc(n, sizeof(void*)); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pfair {
namespace {

TaskSystem make_system(std::int64_t n) {
  constexpr std::int64_t kDens[] = {3, 5, 7, 8, 16};
  constexpr std::int64_t kHorizon = 48;
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    tasks.push_back(Task::periodic_phased("t" + std::to_string(i),
                                          Weight(1, kDens[i % 5]), i % 3,
                                          kHorizon, nullptr));
  }
  Rational util(0);
  for (const Task& t : tasks) util += t.weight().value();
  return TaskSystem(std::move(tasks), static_cast<int>(util.ceil()));
}

TEST(SteadyAlloc, RepeatedScheduleSfqIntoAllocatesNothing) {
  const TaskSystem sys = make_system(64);
  Arena arena;
  SfqOptions opts;
  opts.arena = &arena;
  SlotSchedule out(sys);

  // Warmup: let the arena grow to its high-water mark and every lazily
  // sized structure reach its steady shape.
  for (int r = 0; r < 3; ++r) {
    arena.reset();
    schedule_sfq_into(sys, opts, out);
  }
  const std::size_t cap = arena.capacity_bytes();

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int r = 0; r < 10; ++r) {
    arena.reset();
    schedule_sfq_into(sys, opts, out);
  }
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state schedule_sfq_into performed heap allocations";
  EXPECT_EQ(arena.capacity_bytes(), cap) << "arena kept growing after warmup";
}

TEST(SteadyAlloc, EveryPackablePolicyIsSteadyState) {
  const TaskSystem sys = make_system(48);
  for (const Policy policy : {Policy::kEpdf, Policy::kPd, Policy::kPd2}) {
    Arena arena;
    SfqOptions opts;
    opts.policy = policy;
    opts.arena = &arena;
    SlotSchedule out(sys);
    for (int r = 0; r < 3; ++r) {
      arena.reset();
      schedule_sfq_into(sys, opts, out);
    }
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    for (int r = 0; r < 5; ++r) {
      arena.reset();
      schedule_sfq_into(sys, opts, out);
    }
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << to_string(policy);
  }
}

// The counting hooks themselves must be live, or the zero above would
// be vacuous.
TEST(SteadyAlloc, CountingHooksObserveOrdinaryAllocations) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  auto* p = new std::uint64_t(7);
  delete p;
  std::vector<std::uint64_t> v(1000);
  v[999] = 1;
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_GE(after - before, 2u);
}

}  // namespace
}  // namespace pfair
