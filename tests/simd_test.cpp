// SIMD-vs-scalar property suite: the dispatching kernels in
// core/simd.hpp must agree bit-for-bit with the scalar reference
// implementations on every size class, in particular at the lane-count
// boundaries (1, 7, 8, 9, 15, 16, 17 for 4-wide AVX2 / 2-wide NEON
// kernels), on extreme values that straddle the signed/unsigned
// boundary (the AVX2 backend synthesizes unsigned compares from signed
// ones), and under the runtime force-scalar hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/simd.hpp"

namespace pfair {
namespace {

// The boundary sizes called out in the shim's contract: around one
// 8-ary heap child group and around both SIMD widths.
constexpr std::size_t kBoundarySizes[] = {1, 7, 8, 9, 15, 16, 17};

// Restores the force-scalar hook even when an assertion fires.
struct ScalarGuard {
  explicit ScalarGuard(bool v) { simd::set_force_scalar(v); }
  ~ScalarGuard() { simd::set_force_scalar(false); }
};

std::vector<std::uint64_t> random_keys(Rng& rng, std::size_t n,
                                       bool distinct) {
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix magnitudes: small, mid, and values with the top bit set.
    const std::uint64_t hi =
        static_cast<std::uint64_t>(rng.uniform(0, 3)) << 62;
    keys[i] = hi | static_cast<std::uint64_t>(rng.uniform(0, 1 << 30));
    if (distinct) keys[i] = (keys[i] & ~std::uint64_t{0xffff}) | i;
  }
  return keys;
}

TEST(Simd, AffineKeysMatchesScalarAtBoundarySizes) {
  Rng rng(42);
  for (const std::size_t n : kBoundarySizes) {
    for (int rep = 0; rep < 32; ++rep) {
      std::vector<std::uint64_t> base(n), step(n), job(n);
      for (std::size_t i = 0; i < n; ++i) {
        base[i] = static_cast<std::uint64_t>(rng.uniform(0, 1 << 30)) << 20;
        step[i] = static_cast<std::uint64_t>(rng.uniform(0, 1 << 30)) << 10;
        // The contract requires job < 2^32; cover the top of that range.
        job[i] = rep == 0 ? 0xffffffffULL
                          : static_cast<std::uint64_t>(
                                rng.uniform(0, std::int64_t{0xffffffff}));
      }
      std::vector<std::uint64_t> want(n), got(n);
      simd::affine_keys_scalar(base.data(), step.data(), job.data(),
                               want.data(), n);
      simd::affine_keys(base.data(), step.data(), job.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Simd, AffineKeysWrapsModulo64Bits) {
  // base + job * step overflowing 2^64 must wrap identically in every
  // backend (the packed-key construction never overflows, but the shim
  // promises mod-2^64 semantics regardless).
  const std::uint64_t base[] = {~0ULL, 1ULL << 63, 0, ~0ULL};
  const std::uint64_t step[] = {~0ULL >> 32, 1ULL << 32, ~0ULL >> 32, 1};
  const std::uint64_t job[] = {0xffffffffULL, 2, 0xfffffffeULL, 1};
  std::uint64_t want[4], got[4];
  simd::affine_keys_scalar(base, step, job, want, 4);
  simd::affine_keys(base, step, job, got, 4);
  for (int i = 0; i < 4; ++i) ASSERT_EQ(got[i], want[i]) << i;
}

TEST(Simd, Argmin8MatchesScalarForEveryMinPosition) {
  Rng rng(7);
  for (int rep = 0; rep < 64; ++rep) {
    std::vector<std::uint64_t> keys = random_keys(rng, 8, /*distinct=*/true);
    for (std::size_t pos = 0; pos < 8; ++pos) {
      std::vector<std::uint64_t> k = keys;
      k[pos] = 0;  // unique minimum at pos (distinct keys have low bits = i)
      ASSERT_EQ(simd::argmin8(k.data()), pos);
      ASSERT_EQ(simd::argmin8(k.data()), simd::argmin8_scalar(k.data()));
    }
  }
}

TEST(Simd, Argmin8HandlesSentinelPadding) {
  // The ready heap pads short child groups with ~0 sentinels; the
  // kernel must still pick the live minimum.
  for (std::size_t live = 1; live <= 8; ++live) {
    std::vector<std::uint64_t> keys(8, ~0ULL);
    for (std::size_t i = 0; i < live; ++i) {
      keys[i] = (1ULL << 62) + i * 17;
    }
    ASSERT_EQ(simd::argmin8(keys.data()), 0u) << "live=" << live;
    keys[live - 1] = 3;
    ASSERT_EQ(simd::argmin8(keys.data()), live - 1);
  }
}

TEST(Simd, ArgminMatchesScalarAtBoundarySizes) {
  Rng rng(1234);
  for (const std::size_t n : kBoundarySizes) {
    for (int rep = 0; rep < 32; ++rep) {
      std::vector<std::uint64_t> keys =
          random_keys(rng, n, /*distinct=*/true);
      ASSERT_EQ(simd::argmin(keys.data(), n),
                simd::argmin_scalar(keys.data(), n))
          << "n=" << n;
      // Force the minimum into each slot in turn.
      for (std::size_t pos = 0; pos < n; ++pos) {
        std::vector<std::uint64_t> k = keys;
        k[pos] = pos;  // strictly below every random key, distinct per pos
        ASSERT_EQ(simd::argmin(k.data(), n), pos) << "n=" << n;
      }
    }
  }
}

TEST(Simd, ArgminExtremeValuesStraddleSignBit) {
  // 2^63 - 1 vs 2^63: a signed compare would order these backwards.
  const std::uint64_t keys[] = {1ULL << 63,       (1ULL << 63) - 1,
                                ~0ULL,            (1ULL << 63) + 1,
                                (1ULL << 62),     ~0ULL - 1,
                                (1ULL << 63) - 2, 1ULL};
  ASSERT_EQ(simd::argmin8(keys), 7u);
  ASSERT_EQ(simd::argmin(keys, 8), 7u);
  const std::uint64_t high_only[] = {1ULL << 63,       (1ULL << 63) + 5,
                                     (1ULL << 63) + 1, ~0ULL,
                                     (1ULL << 63) + 2, (1ULL << 63) + 9,
                                     (1ULL << 63) + 3, (1ULL << 63) + 4};
  ASSERT_EQ(simd::argmin8(high_only), 0u);
  ASSERT_EQ(simd::argmin(high_only, 8), 0u);
}

TEST(Simd, ForceScalarHookRoutesToScalarBackend) {
  const ScalarGuard guard(true);
  EXPECT_FALSE(simd::accelerated());
  Rng rng(99);
  const std::vector<std::uint64_t> keys =
      random_keys(rng, 17, /*distinct=*/true);
  EXPECT_EQ(simd::argmin(keys.data(), 17),
            simd::argmin_scalar(keys.data(), 17));
  EXPECT_EQ(simd::argmin8(keys.data()), simd::argmin8_scalar(keys.data()));
}

TEST(Simd, IsaNameMatchesCompiledBackend) {
#if defined(PFAIR_SIMD_AVX2)
  EXPECT_STREQ(simd::isa_name(), "avx2");
  EXPECT_TRUE(simd::accelerated());
#elif defined(PFAIR_SIMD_NEON)
  EXPECT_STREQ(simd::isa_name(), "neon");
  EXPECT_TRUE(simd::accelerated());
#else
  EXPECT_STREQ(simd::isa_name(), "scalar");
  EXPECT_FALSE(simd::accelerated());
#endif
}

}  // namespace
}  // namespace pfair
