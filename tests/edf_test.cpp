// Tests for the EDF baselines: job expansion, uniprocessor optimality,
// the Dhall effect under global EDF, and partitioning limits — the
// utilization gap that motivates Pfair (Sec. 1).
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "edf/global_edf.hpp"
#include "edf/partitioned_edf.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TaskSystem make_sys(std::vector<std::pair<std::int64_t, std::int64_t>> ws,
                    int m, std::int64_t horizon) {
  std::vector<Task> tasks;
  int id = 0;
  for (const auto& [e, p] : ws) {
    tasks.push_back(
        Task::periodic("T" + std::to_string(id++), Weight(e, p), horizon));
  }
  return TaskSystem(std::move(tasks), m);
}

TEST(Jobs, ExpansionMatchesPeriods) {
  const TaskSystem sys = make_sys({{1, 2}, {2, 3}}, 1, 6);
  const std::vector<Job> jobs = expand_jobs(sys, 6);
  // 3 jobs of T0 (releases 0,2,4) + 2 jobs of T1 (releases 0,3).
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].release, 0);
  EXPECT_EQ(jobs[0].deadline, 2);
  EXPECT_EQ(jobs[0].exec, 1);
  EXPECT_EQ(jobs[3].task, 1);
  EXPECT_EQ(jobs[4].release, 3);
  EXPECT_EQ(jobs[4].deadline, 6);
  EXPECT_EQ(jobs[4].exec, 2);
}

TEST(Jobs, RejectsNonPeriodicTasks) {
  std::vector<Task> tasks;
  tasks.push_back(Task::intra_sporadic("T", Weight(1, 2), {0, 1}, 2));
  const TaskSystem sys(std::move(tasks), 1);
  EXPECT_THROW((void)expand_jobs(sys, 4), ContractViolation);
}

TEST(GlobalEdf, UniprocessorOptimal) {
  // EDF is optimal on one processor: any util <= 1 set meets deadlines.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 1;
    cfg.target_util = Rational(1);
    cfg.horizon = 40;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const JobScheduleResult res = run_global_edf(sys);
    EXPECT_TRUE(res.all_met()) << "seed " << seed << " missed "
                               << res.missed_jobs << "/" << res.total_jobs;
  }
}

TEST(GlobalEdf, DhallEffect) {
  // Two light tasks (1/5) + one heavy (10/11) on M = 2: utilization 1.31
  // of 2, yet global EDF misses — the heavy job loses slots 0 and 5 to
  // the short-deadline jobs and cannot finish 10 quanta by time 11.
  const TaskSystem sys = make_sys({{1, 5}, {1, 5}, {10, 11}}, 2, 55);
  ASSERT_LT(sys.total_utilization(), Rational(3, 2));
  const JobScheduleResult res = run_global_edf(sys);
  EXPECT_GT(res.missed_jobs, 0);
  EXPECT_GT(res.max_tardiness, 0);

  // PD2 schedules the same system with no misses.
  const SlotSchedule pd2 = schedule_sfq(sys);
  ASSERT_TRUE(pd2.complete());
  EXPECT_EQ(measure_tardiness(sys, pd2).max_ticks, 0);
}

TEST(GlobalEdf, MeetsAtLowUtilization) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 4;
    cfg.target_util = Rational(2);  // M/2 — the classic safe zone
    cfg.horizon = 30;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const JobScheduleResult res = run_global_edf(sys);
    EXPECT_TRUE(res.all_met()) << "seed " << seed;
  }
}

TEST(PartitionedEdf, ThreeTwoThirdsDoNotPartition) {
  // Three tasks of weight 2/3 on two processors: total utilization 2 = M,
  // but no pair fits on one processor — first-fit fails while PD2
  // schedules the same system perfectly.
  const TaskSystem sys = make_sys({{2, 3}, {2, 3}, {2, 3}}, 2, 12);
  const PartitionedEdfResult res = run_partitioned_edf(sys);
  EXPECT_FALSE(res.partitioned);

  const SlotSchedule pd2 = schedule_sfq(sys);
  ASSERT_TRUE(pd2.complete());
  EXPECT_EQ(measure_tardiness(sys, pd2).max_ticks, 0);
}

TEST(PartitionedEdf, PartitionableSetMeetsAllDeadlines) {
  const TaskSystem sys = make_sys({{1, 2}, {1, 2}, {1, 2}, {1, 2}}, 2, 20);
  const PartitionedEdfResult res = run_partitioned_edf(sys);
  ASSERT_TRUE(res.partitioned);
  EXPECT_TRUE(res.schedule.all_met());
  // Two tasks per processor.
  std::vector<int> count(2, 0);
  for (const int a : res.assignment) {
    ASSERT_GE(a, 0);
    ++count[static_cast<std::size_t>(a)];
  }
  EXPECT_EQ(count[0], 2);
  EXPECT_EQ(count[1], 2);
}

TEST(PartitionedEdf, FirstFitDecreasingPacksByWeight) {
  // 0.9 + 0.9 + 0.1 + 0.1 on 2 processors: FFD places the two heavies on
  // separate processors and the lights beside them.
  const TaskSystem sys =
      make_sys({{9, 10}, {9, 10}, {1, 10}, {1, 10}}, 2, 20);
  const PartitionedEdfResult res = run_partitioned_edf(sys);
  ASSERT_TRUE(res.partitioned);
  EXPECT_NE(res.assignment[0], res.assignment[1]);
  EXPECT_TRUE(res.schedule.all_met());
}

TEST(PartitionedEdf, OverloadedProcessorMisses) {
  // A partitionable but per-processor-overloaded system cannot happen
  // with FFD (it never packs above 1); instead check an infeasible
  // system is rejected by bin packing.
  const TaskSystem sys = make_sys({{1, 1}, {1, 1}, {1, 2}}, 2, 8);
  const PartitionedEdfResult res = run_partitioned_edf(sys);
  EXPECT_FALSE(res.partitioned);
}

TEST(GlobalEdf, UnfinishedJobsCountedAsMisses) {
  // Utilization 2 on one processor: most jobs cannot finish; the result
  // must report misses rather than silently dropping jobs.
  const TaskSystem sys = make_sys({{1, 1}, {1, 1}}, 1, 6);
  const JobScheduleResult res = run_global_edf(sys);
  EXPECT_GT(res.missed_jobs, 0);
  EXPECT_EQ(res.total_jobs, 12);
}

}  // namespace
}  // namespace pfair
