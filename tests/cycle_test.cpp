// Steady-state cycle detection and hyperperiod fast-forward.
//
// The contract under test: `schedule_sfq_cyclic` / `schedule_dvq_cyclic`
// produce schedules bit-identical to the naive reference oracles at any
// horizon — whether or not fast-forward engages — and every downstream
// consumer (validity, lag, tardiness, the InvariantAuditor via
// `replay_decisions`) sees a CycleSchedule exactly as it would see the
// materialized SlotSchedule.  Systems that defeat fingerprinting
// (phased, IS jitter, Bernoulli yields) must refuse fast-forward and
// fall back to the plain full run.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

#include "analysis/hyperperiod.hpp"
#include "analysis/lag.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "dvq/dvq_cycle.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "dvq/reference_scheduler.hpp"
#include "dvq/yield.hpp"
#include "obs/audit.hpp"
#include "sched/compressed_schedule.hpp"
#include "sched/reference_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "sched/state_hash.hpp"
#include "workload/generator.hpp"
#include "workload/paper_figures.hpp"

namespace pfair {
namespace {

constexpr Policy kAllPolicies[] = {Policy::kEpdf, Policy::kPf, Policy::kPd,
                                   Policy::kPd2};

// Deterministic weight pool with all periods dividing 24, so every
// generated system has hyperperiod H | 24 — horizons crossing 1, 2 and
// 7.5 hyperperiods are then exact, known multiples.
constexpr std::int64_t kPool = 24;

// Builds a zero-phase periodic system with H | 24 and subtask coverage
// of `coverage_cycles` pool periods.  Roughly one third of seeds leave
// utilization slack (idle slots join the repeating pattern); the rest
// fill up to exactly M.
TaskSystem make_cyclic_system(int seed, std::int64_t coverage_cycles) {
  Rng rng(static_cast<std::uint64_t>(9000 + seed));
  const int m = 1 + seed % 3;
  const bool leave_slack = seed % 3 == 0;
  const std::int64_t horizon = coverage_cycles * kPool;
  std::vector<Task> tasks;
  Rational util;
  const Rational cap =
      leave_slack ? Rational(m) - Rational(1, 3) : Rational(m);
  while (util < cap) {
    const std::int64_t periods[] = {2, 3, 4, 6, 8, 12, 24};
    const std::int64_t p = periods[rng.uniform(0, 6)];
    const std::int64_t e = rng.uniform(1, p);
    if (util + Rational(e, p) > cap) {
      // Close the gap exactly (cap - util has a denominator dividing 24).
      const Rational gap = cap - util;
      const std::int64_t ge = gap.num() * (kPool / gap.den());
      if (ge >= kPool) break;  // gap >= 1: cannot close with one task
      tasks.push_back(Task::periodic("G" + std::to_string(tasks.size()),
                                     Weight(ge, kPool), horizon));
      util += gap;
      break;
    }
    tasks.push_back(Task::periodic("T" + std::to_string(tasks.size()),
                                   Weight(e, p), horizon));
    util += Rational(e, p);
  }
  return TaskSystem(std::move(tasks), m);
}

bool same_sfq(const SlotSchedule& a, const SlotSchedule& b,
              const TaskSystem& sys, std::string* why) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t t = 0; t < sys.task(k).num_subtasks(); ++t) {
      const SubtaskRef ref{k, t};
      const SlotPlacement& pa = a.placement(ref);
      const SlotPlacement& pb = b.placement(ref);
      if (pa.slot != pb.slot || pa.proc != pb.proc) {
        std::ostringstream os;
        os << ref << ": slot " << pa.slot << "/proc " << pa.proc << " vs "
           << pb.slot << "/" << pb.proc;
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

bool same_dvq(const DvqSchedule& a, const DvqSchedule& b,
              const TaskSystem& sys, std::string* why) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t t = 0; t < sys.task(k).num_subtasks(); ++t) {
      const SubtaskRef ref{k, t};
      const DvqPlacement& pa = a.placement(ref);
      const DvqPlacement& pb = b.placement(ref);
      if (pa.start != pb.start || pa.cost != pb.cost || pa.proc != pb.proc) {
        std::ostringstream os;
        os << ref << ": start " << pa.start.raw_ticks() << "/proc "
           << pa.proc << " vs " << pb.start.raw_ticks() << "/" << pb.proc;
        *why = os.str();
        return false;
      }
    }
  }
  return true;
}

struct FailureLog {
  std::mutex mu;
  std::atomic<int> count{0};
  std::string first;

  void record(const std::string& what) {
    count.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mu);
    if (first.empty()) first = what;
  }
};

// The tentpole property: 100 seeded systems, horizons crossing 1, 2 and
// 7.5 hyperperiods, cyclic path vs naive reference, bit-identical.  The
// 2x and 7.5x horizons must actually engage fast-forward (H | 24 and
// coverage leaves room to skip at least one whole cycle).
TEST(CycleFastForward, SfqMatchesReferenceAcrossHorizons) {
  // Horizons as multiples of kPool (a multiple of every H): 1, 2, 7.5.
  const std::int64_t horizons[] = {kPool, 2 * kPool, 15 * kPool / 2};
  FailureLog failures;
  std::atomic<int> engaged_runs{0};
  global_pool().parallel_for(0, 100, [&](std::int64_t i) {
    const int seed = static_cast<int>(i);
    const TaskSystem sys = make_cyclic_system(seed, 10);
    SfqOptions opts;
    opts.policy = kAllPolicies[seed % 4];
    // EPDF is only optimal on <= 2 processors; a deadline miss perturbs
    // the lag state and recurrence legitimately may not show up.  Keep
    // the engagement assertion sharp by using an optimal policy there.
    if (opts.policy == Policy::kEpdf && sys.processors() > 2) {
      opts.policy = Policy::kPd2;
    }
    for (const std::int64_t h : horizons) {
      opts.horizon_limit = h;
      const std::string tag =
          "seed " + std::to_string(seed) + " h=" + std::to_string(h);
      const SlotSchedule ref = schedule_sfq_reference(sys, opts);
      const CycleSchedule cyc = schedule_sfq_cyclic(sys, opts);
      std::string why;
      if (!same_sfq(ref, cyc.materialize(h), sys, &why)) {
        failures.record(tag + " materialized: " + why);
      }
      // The public entry point routes through the same machinery.
      if (!same_sfq(ref, schedule_sfq(sys, opts), sys, &why)) {
        failures.record(tag + " schedule_sfq: " + why);
      }
      if (h >= 2 * kPool) {
        if (!cyc.stats().engaged) {
          failures.record(tag + ": expected fast-forward to engage");
        } else {
          engaged_runs.fetch_add(1, std::memory_order_relaxed);
          if (cyc.stats().sim_slots + cyc.stats().slots_skipped <
              cyc.stats().detect_slot) {
            failures.record(tag + ": inconsistent cycle stats");
          }
        }
      }
    }
  });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
  EXPECT_GE(engaged_runs.load(), 190);  // 2 long horizons x ~100 seeds
}

TEST(CycleFastForward, DvqMatchesReferenceAcrossHorizons) {
  const std::int64_t horizons[] = {kPool, 2 * kPool, 15 * kPool / 2};
  FailureLog failures;
  std::atomic<int> engaged_runs{0};
  global_pool().parallel_for(0, 100, [&](std::int64_t i) {
    const int seed = static_cast<int>(i);
    const TaskSystem sys = make_cyclic_system(seed, 10);
    // Deterministic-periodic yield models only; Bernoulli is the refusal
    // case below.
    const FullQuantumYield full;
    const FixedYield fixed(kQuantum - kTick);
    const FractionalTailYield tail(Time::ticks(kTicksPerSlot / 2));
    const YieldModel* yields[] = {&full, &fixed, &tail};
    const YieldModel& y = *yields[seed % 3];
    DvqOptions opts;
    opts.policy = kAllPolicies[seed % 4];
    for (const std::int64_t h : horizons) {
      opts.horizon_limit = h;
      const std::string tag =
          "seed " + std::to_string(seed) + " h=" + std::to_string(h);
      const DvqSchedule ref = schedule_dvq_reference(sys, y, opts);
      const DvqCycleSchedule cyc = schedule_dvq_cyclic(sys, y, opts);
      std::string why;
      if (!same_dvq(ref, cyc.materialize(h), sys, &why)) {
        failures.record(tag + " materialized: " + why);
      }
      if (!same_dvq(ref, schedule_dvq(sys, y, opts), sys, &why)) {
        failures.record(tag + " schedule_dvq: " + why);
      }
      if (h >= 2 * kPool && cyc.stats().engaged) {
        engaged_runs.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(failures.count.load(), 0) << failures.first;
  EXPECT_GE(engaged_runs.load(), 60);
}

// A hand-built fully utilized system must deterministically engage in
// both models.
TEST(CycleFastForward, DeterministicEngagement) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 10 * kPool));
  tasks.push_back(Task::periodic("B", Weight(1, 2), 10 * kPool));
  const TaskSystem sys(std::move(tasks), 1);

  SfqOptions sopts;
  sopts.horizon_limit = 6 * kPool;
  const CycleSchedule sc = schedule_sfq_cyclic(sys, sopts);
  ASSERT_TRUE(sc.stats().engaged);
  EXPECT_GT(sc.stats().slots_skipped, 0);
  EXPECT_LT(sc.stats().sim_slots, 6 * kPool);

  const FullQuantumYield y;
  DvqOptions dopts;
  dopts.horizon_limit = 6 * kPool;
  const DvqCycleSchedule dc = schedule_dvq_cyclic(sys, y, dopts);
  ASSERT_TRUE(dc.stats().engaged);
  EXPECT_GT(dc.stats().slots_skipped, 0);
}

// Systems that defeat exact fingerprinting must refuse fast-forward and
// fall back to the plain full run, bit-identically.
TEST(CycleFastForward, RefusesAndFallsBackCleanly) {
  for (int seed = 0; seed < 12; ++seed) {
    SfqOptions opts;
    opts.policy = kAllPolicies[seed % 4];
    opts.horizon_limit = 6 * kPool;

    // Phased: release anchors cannot recur at hyperperiod boundaries.
    TaskSystem base = make_cyclic_system(seed, 8);
    std::vector<Task> phased_tasks;
    for (std::int32_t k = 0; k < base.num_tasks(); ++k) {
      const Task& t = base.task(k);
      phased_tasks.push_back(Task::periodic_phased(
          t.name(), t.weight(), 1 + k % 2, 8 * kPool + 2));
    }
    const TaskSystem phased(std::move(phased_tasks), base.processors());
    const CycleSchedule pc = schedule_sfq_cyclic(phased, opts);
    EXPECT_FALSE(pc.stats().engaged) << "seed " << seed;
    std::string why;
    ASSERT_TRUE(same_sfq(schedule_sfq_reference(phased, opts),
                         schedule_sfq(phased, opts), phased, &why))
        << "seed " << seed << ": " << why;

    // IS jitter: sporadic task kinds are not fingerprintable.
    const TaskSystem jittered = add_is_jitter(
        make_cyclic_system(seed, 8), 3, 1, 3,
        static_cast<std::uint64_t>(seed));
    const CycleSchedule jc = schedule_sfq_cyclic(jittered, opts);
    EXPECT_FALSE(jc.stats().engaged) << "seed " << seed;
    ASSERT_TRUE(same_sfq(schedule_sfq_reference(jittered, opts),
                         schedule_sfq(jittered, opts), jittered, &why))
        << "seed " << seed << ": " << why;

    // Bernoulli yields: costs are not a periodic function of the seq,
    // so the DVQ detector must not engage even on a periodic system.
    const TaskSystem sys = make_cyclic_system(seed, 8);
    const BernoulliYield bern(static_cast<std::uint64_t>(seed) * 31 + 7, 1,
                              2, kTick, kQuantum - kTick);
    DvqOptions dopts;
    dopts.policy = kAllPolicies[seed % 4];
    dopts.horizon_limit = 6 * kPool;
    const DvqCycleSchedule bc = schedule_dvq_cyclic(sys, bern, dopts);
    EXPECT_FALSE(bc.stats().engaged) << "seed " << seed;
    ASSERT_TRUE(same_dvq(schedule_dvq_reference(sys, bern, dopts),
                         schedule_dvq(sys, bern, dopts), sys, &why))
        << "seed " << seed << ": " << why;
  }
}

// Instrumented runs never fast-forward: the cyclic driver itself falls
// back when a trace sink or metrics registry is attached, so trace
// streams are never elided.
TEST(CycleFastForward, InstrumentedRunsNeverEngage) {
  const TaskSystem sys = make_cyclic_system(1, 8);
  SfqOptions opts;
  opts.horizon_limit = 6 * kPool;
  ASSERT_TRUE(schedule_sfq_cyclic(sys, opts).stats().engaged);

  InvariantAuditor audit(sys);
  SfqOptions iopts = opts;
  iopts.trace = &audit;
  EXPECT_FALSE(schedule_sfq_cyclic(sys, iopts).stats().engaged);
  EXPECT_TRUE(audit.clean()) << audit.findings().front().str();
}

// Every analysis consumes the CycleSchedule unchanged: identical
// verdicts to the materialized schedule, and the InvariantAuditor
// replayed from the compressed representation reports zero findings.
TEST(CycleFastForward, AnalysesAndAuditorConsumeCycleSchedule) {
  for (int seed = 0; seed < 16; ++seed) {
    const TaskSystem sys = make_cyclic_system(seed, 8);
    SfqOptions opts;
    opts.policy = kAllPolicies[seed % 4];
    if (opts.policy == Policy::kEpdf && sys.processors() > 2) {
      opts.policy = Policy::kPd2;
    }
    opts.horizon_limit = 6 * kPool;
    const CycleSchedule cyc = schedule_sfq_cyclic(sys, opts);
    ASSERT_TRUE(cyc.stats().engaged) << "seed " << seed;
    const SlotSchedule flat = cyc.materialize(cyc.horizon());

    // Validity: same verdict, same violation count.
    const ValidityReport vr_c = check_slot_schedule(sys, cyc);
    const ValidityReport vr_f = check_slot_schedule(sys, flat);
    EXPECT_EQ(vr_c.valid(), vr_f.valid()) << "seed " << seed;
    EXPECT_EQ(vr_c.violations.size(), vr_f.violations.size());

    // Lag: identical extrema over the full horizon, and Pfairness holds
    // either way.
    const std::int64_t h = cyc.horizon();
    const LagRange lr_c = lag_range(sys, cyc, h);
    const LagRange lr_f = lag_range(sys, flat, h);
    EXPECT_TRUE(lr_c.min == lr_f.min && lr_c.max == lr_f.max)
        << "seed " << seed;
    EXPECT_EQ(is_pfair(sys, cyc, h), is_pfair(sys, flat, h));
    EXPECT_TRUE(lag(sys, cyc, 0, h / 2) == lag(sys, flat, 0, h / 2));

    // Tardiness: identical summaries and value vectors.
    const TardinessSummary ts_c = measure_tardiness(sys, cyc);
    const TardinessSummary ts_f = measure_tardiness(sys, flat);
    EXPECT_EQ(ts_c.max_ticks, ts_f.max_ticks) << "seed " << seed;
    EXPECT_EQ(ts_c.total_ticks, ts_f.total_ticks);
    EXPECT_EQ(ts_c.late_subtasks, ts_f.late_subtasks);
    EXPECT_EQ(ts_c.unscheduled, ts_f.unscheduled);
    EXPECT_EQ(tardiness_values_ticks(sys, cyc),
              tardiness_values_ticks(sys, flat));

    // The auditor accepts a CycleSchedule-backed run with zero findings.
    InvariantAuditor audit(sys);
    replay_decisions(sys, cyc, audit);
    EXPECT_TRUE(audit.clean())
        << "seed " << seed << ": " << audit.total_findings() << " findings, "
        << (audit.findings().empty() ? std::string("<none stored>")
                                     : audit.findings().front().str());

    // slot_contents agrees inside the synthesized window.
    const std::int64_t probe =
        cyc.stats().detect_slot + cyc.stats().slots_skipped / 2;
    EXPECT_EQ(cyc.slot_contents(probe), flat.slot_contents(probe))
        << "seed " << seed;
  }
}

// DVQ analyses likewise: validity and tardiness on the compressed
// schedule match the materialized run.
TEST(CycleFastForward, DvqAnalysesConsumeCycleSchedule) {
  for (int seed = 0; seed < 8; ++seed) {
    const TaskSystem sys = make_cyclic_system(seed, 8);
    const FullQuantumYield y;
    DvqOptions opts;
    opts.horizon_limit = 6 * kPool;
    const DvqCycleSchedule cyc = schedule_dvq_cyclic(sys, y, opts);
    if (!cyc.stats().engaged) continue;
    const DvqSchedule flat = cyc.materialize(opts.horizon_limit);

    const ValidityReport vr_c = check_dvq_schedule(sys, cyc, kQuantum);
    const ValidityReport vr_f = check_dvq_schedule(sys, flat, kQuantum);
    EXPECT_EQ(vr_c.valid(), vr_f.valid()) << "seed " << seed;
    EXPECT_EQ(vr_c.violations.size(), vr_f.violations.size());

    const TardinessSummary ts_c = measure_tardiness(sys, cyc);
    const TardinessSummary ts_f = measure_tardiness(sys, flat);
    EXPECT_EQ(ts_c.max_ticks, ts_f.max_ticks) << "seed " << seed;
    EXPECT_EQ(ts_c.total_ticks, ts_f.total_ticks);
    EXPECT_EQ(tardiness_values_ticks(sys, cyc),
              tardiness_values_ticks(sys, flat));
  }
}

// The generalized periodicity check and the online detector agree: a
// system whose schedule the offline check certifies periodic is one the
// online detector fast-forwards.
TEST(CycleFastForward, OfflineCheckAgreesWithOnlineDetector) {
  for (int seed = 0; seed < 12; ++seed) {
    const TaskSystem sys = make_cyclic_system(seed, 8);
    SfqOptions opts;
    opts.policy =
        sys.processors() > 2 ? Policy::kPd2 : kAllPolicies[seed % 4];
    opts.horizon_limit = 6 * kPool;
    opts.cycle_detect = false;  // the offline check needs the full run
    const SlotSchedule full = schedule_sfq(sys, opts);
    const PeriodicityReport rep = check_schedule_periodicity(sys, full);
    ASSERT_TRUE(rep.applicable) << "seed " << seed;
    EXPECT_TRUE(rep.periodic) << "seed " << seed;

    opts.cycle_detect = true;
    EXPECT_TRUE(schedule_sfq_cyclic(sys, opts).stats().engaged)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace pfair
