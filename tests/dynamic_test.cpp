// Tests for dynamic task systems: retirement rule, admission control,
// and the end-to-end guarantee that admitted scenarios meet deadlines.
#include <gtest/gtest.h>

#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "core/rng.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/dynamic.hpp"

namespace pfair {
namespace {

TEST(Dynamic, RetireTimeLightTask) {
  // Light task 1/3, one subtask: deadline 3; retire = join + 3.
  EXPECT_EQ(retire_time(DynamicTaskSpec{"L", Weight(1, 3), 5, 1}), 5 + 3);
}

TEST(Dynamic, RetireTimeHeavyCompleteJobEqualsDeadline) {
  // Complete-job departures end on b = 0, so D = d: weight 3/4, 3
  // subtasks -> retire at 4; 6 subtasks with join 2 -> 2 + 8.
  EXPECT_EQ(retire_time(DynamicTaskSpec{"H", Weight(3, 4), 0, 3}), 4);
  EXPECT_EQ(retire_time(DynamicTaskSpec{"H", Weight(3, 4), 2, 6}), 10);
}

TEST(Dynamic, RetireTimeMidCascadeUsesGroupDeadline) {
  // Leaving after T_2 of a weight-3/4 task: d(T_2) = 3 but the cascade
  // runs to the group deadline 4 — the share is retained until 4.
  EXPECT_EQ(retire_time(DynamicTaskSpec{"H", Weight(3, 4), 0, 2}), 4);
  // A light task mid-sequence retains only to its deadline.
  EXPECT_EQ(retire_time(DynamicTaskSpec{"L", Weight(2, 5), 0, 1}), 3);
}

TEST(Dynamic, AdmissionAcceptsDisjointHeavyTasks) {
  // Two weight-3/4 tasks that never overlap can share the same budget
  // even though 3/4 + 3/4 > 1.
  std::vector<DynamicTaskSpec> specs{
      {"early", Weight(3, 4), 0, 3},  // retires at 4
      {"late", Weight(3, 4), 4, 3},   // joins at 4
      {"base", Weight(1, 4), 0, 2},
  };
  const DynamicBuildResult res = build_dynamic(specs, 1);
  EXPECT_TRUE(res.admitted) << res.rejection;
  EXPECT_EQ(res.peak_util, Rational(1));
}

TEST(Dynamic, AdmissionRejectsOverlappingOverload) {
  std::vector<DynamicTaskSpec> specs{
      {"early", Weight(3, 4), 0, 3},  // retires at 4
      {"eager", Weight(3, 4), 3, 3},  // joins while early is retained
      {"base", Weight(1, 4), 0, 2},
  };
  const DynamicBuildResult res = build_dynamic(specs, 1);
  EXPECT_FALSE(res.admitted);
  EXPECT_NE(res.rejection.find("eager"), std::string::npos);
  EXPECT_THROW((void)build_dynamic_system(specs, 1), ContractViolation);
}

TEST(Dynamic, MidCascadeRetentionIsStricter) {
  // The joiner at t = 3 is fine after a complete-job departure would be
  // fine... but "early" leaves after 2 subtasks (d = 3) and the cascade
  // retains its share to 4, so a join at 3 is rejected while a join at 4
  // is admitted.
  std::vector<DynamicTaskSpec> base{{"early", Weight(3, 4), 0, 2}};
  {
    auto specs = base;
    specs.push_back({"join3", Weight(1, 2), 3, 2});
    EXPECT_FALSE(build_dynamic(specs, 1).admitted);
  }
  {
    auto specs = base;
    specs.push_back({"join4", Weight(1, 2), 4, 2});
    EXPECT_TRUE(build_dynamic(specs, 1).admitted);
  }
}

TEST(Dynamic, MaterializedTasksAreValidGis) {
  std::vector<DynamicTaskSpec> specs{
      {"a", Weight(1, 2), 0, 3},
      {"b", Weight(1, 2), 2, 2},
  };
  const TaskSystem sys = build_dynamic_system(specs, 1);
  ASSERT_EQ(sys.num_tasks(), 2);
  EXPECT_EQ(sys.task(0).num_subtasks(), 3);
  EXPECT_EQ(sys.task(1).num_subtasks(), 2);
  EXPECT_EQ(sys.task(1).subtask(0).release, 2);
  EXPECT_EQ(sys.task(1).subtask(0).theta, 2);
}

TEST(Dynamic, AdmittedScenariosMeetDeadlinesUnderPd2) {
  // Randomized joins/leaves with admission control: PD2 must meet every
  // window (the admission rule retains departed shares long enough).
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    std::vector<DynamicTaskSpec> specs;
    const int m = static_cast<int>(2 + seed % 2);
    // Greedily add tasks that pass admission.
    for (int attempt = 0; attempt < 40; ++attempt) {
      DynamicTaskSpec s;
      s.name = "T" + std::to_string(attempt);
      const std::int64_t p = 2 + rng.uniform(0, 6);
      s.weight = Weight(rng.uniform(1, p - 1), p);
      s.join = rng.uniform(0, 20);
      s.count = rng.uniform(1, 6);
      specs.push_back(s);
      if (!build_dynamic(specs, m).admitted) specs.pop_back();
    }
    ASSERT_GE(specs.size(), 3u) << "seed " << seed;
    const TaskSystem sys = build_dynamic_system(specs, m);
    const SlotSchedule sched = schedule_sfq(sys);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    const ValidityReport rep = check_slot_schedule(sys, sched);
    EXPECT_TRUE(rep.valid()) << "seed " << seed << ": " << rep.str();
  }
}

TEST(Dynamic, AdmittedScenariosBoundedUnderDvq) {
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    Rng rng(seed);
    std::vector<DynamicTaskSpec> specs;
    for (int attempt = 0; attempt < 30; ++attempt) {
      DynamicTaskSpec s;
      s.name = "T" + std::to_string(attempt);
      const std::int64_t p = 2 + rng.uniform(0, 6);
      s.weight = Weight(rng.uniform(1, p - 1), p);
      s.join = rng.uniform(0, 16);
      s.count = rng.uniform(1, 6);
      specs.push_back(s);
      if (!build_dynamic(specs, 2).admitted) specs.pop_back();
    }
    const TaskSystem sys = build_dynamic_system(specs, 2);
    const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    ASSERT_TRUE(dvq.complete()) << "seed " << seed;
    EXPECT_LT(measure_tardiness(sys, dvq).max_ticks, kTicksPerSlot)
        << "seed " << seed;
  }
}

TEST(Dynamic, RejectedScenarioForcedThroughDoesMiss) {
  // The scenario our admission rejects — a unit task joining at t = 2
  // while a weight-3/4 task's share is retained to 4 — really does miss
  // when forced: h_3 and u_2 contend for slot 3 and u_2 slips to 4.
  std::vector<DynamicTaskSpec> specs{
      {"h", Weight(3, 4), 0, 3},
      {"u", Weight(1, 1), 2, 4},
  };
  ASSERT_FALSE(build_dynamic(specs, 1).admitted);

  std::vector<Task> tasks;
  tasks.push_back(Task::gis("h", Weight(3, 4),
                            {Task::SubtaskSpec{1, 0, -1},
                             Task::SubtaskSpec{2, 0, -1},
                             Task::SubtaskSpec{3, 0, -1}}));
  std::vector<Task::SubtaskSpec> u;
  for (std::int64_t i = 1; i <= 4; ++i) {
    u.push_back(Task::SubtaskSpec{i, 2, -1});
  }
  tasks.push_back(Task::gis("u", Weight(1, 1), u));
  const TaskSystem sys(std::move(tasks), 1);
  const SlotSchedule sched = schedule_sfq(sys);
  const TardinessSummary sum = measure_tardiness(sys, sched);
  EXPECT_TRUE(sum.max_ticks > 0 || sum.unscheduled > 0);
}

}  // namespace
}  // namespace pfair
