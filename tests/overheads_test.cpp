// Tests for overhead accounting (weight inflation) plus whole-system
// stress and determinism checks.
#include <gtest/gtest.h>

#include "analysis/overheads.hpp"
#include "analysis/tardiness.hpp"
#include "analysis/validity.hpp"
#include "dvq/dvq_scheduler.hpp"
#include "sched/sfq_scheduler.hpp"
#include "workload/generator.hpp"

namespace pfair {
namespace {

TEST(Overheads, BudgetFormula) {
  // util 3/2 on M = 2: utilization slack 1 - 3/4 = 1/4; heaviest weight
  // 3/4 leaves slack 1/4 too.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(3, 4), 8));
  tasks.push_back(Task::periodic("B", Weight(3, 4), 8));
  const TaskSystem sys(std::move(tasks), 2);
  EXPECT_EQ(overhead_budget(sys), Rational(1, 4));
}

TEST(Overheads, BudgetLimitedByHeaviestTask) {
  // Low utilization but one near-unit task: the task cap dominates.
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(9, 10), 10));
  const TaskSystem sys(std::move(tasks), 4);
  EXPECT_EQ(overhead_budget(sys), Rational(1, 10));
}

TEST(Overheads, FullyUtilizedHasZeroBudget) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 1), 4));
  const TaskSystem sys(std::move(tasks), 1);
  EXPECT_EQ(overhead_budget(sys), Rational(0));
}

TEST(Overheads, InflationScalesWeights) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(1, 2), 12));
  tasks.push_back(Task::periodic("B", Weight(1, 4), 12));
  const TaskSystem sys(std::move(tasks), 2);
  const TaskSystem fat = inflate_for_overheads(sys, Rational(1, 5), 20);
  // 1/2 / (4/5) = 5/8; 1/4 / (4/5) = 5/16.
  EXPECT_EQ(fat.task(0).weight().value(), Rational(5, 8));
  EXPECT_EQ(fat.task(1).weight().value(), Rational(5, 16));
  EXPECT_TRUE(fat.feasible());
}

TEST(Overheads, OverBudgetRejected) {
  std::vector<Task> tasks;
  tasks.push_back(Task::periodic("A", Weight(3, 4), 8));
  const TaskSystem sys(std::move(tasks), 1);
  EXPECT_THROW((void)inflate_for_overheads(sys, Rational(1, 2), 16),
               ContractViolation);
}

TEST(Overheads, InflatedSystemsStillScheduleCleanly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = 3;
    cfg.target_util = Rational(9, 4);  // 75% load: budget >= 1/4 possible
    cfg.weights = WeightClass::kLight;
    cfg.horizon = 16;
    cfg.seed = seed;
    const TaskSystem sys = generate_periodic(cfg);
    const Rational budget = overhead_budget(sys);
    ASSERT_GT(budget, Rational(0)) << "seed " << seed;
    const Rational f = budget / Rational(2);
    const TaskSystem fat = inflate_for_overheads(sys, f, 24);
    ASSERT_TRUE(fat.feasible());
    const SlotSchedule sched = schedule_sfq(fat);
    ASSERT_TRUE(sched.complete()) << "seed " << seed;
    EXPECT_TRUE(check_slot_schedule(fat, sched).valid()) << "seed " << seed;
  }
}

// ------------------------------------------------------- stress/determinism

TEST(Stress, LargeSystemLongHorizon) {
  GeneratorConfig cfg;
  cfg.processors = 8;
  cfg.target_util = Rational(8);
  cfg.horizon = 120;
  cfg.seed = 77;
  const TaskSystem sys = generate_periodic(cfg);
  ASSERT_GT(sys.total_subtasks(), 500);

  const SlotSchedule sfq = schedule_sfq(sys);
  ASSERT_TRUE(sfq.complete());
  EXPECT_EQ(measure_tardiness(sys, sfq).max_ticks, 0);

  const BernoulliYield yields(9, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  ASSERT_TRUE(dvq.complete());
  EXPECT_LT(measure_tardiness(sys, dvq).max_ticks, kTicksPerSlot);
}

TEST(Stress, DvqDeterministicAcrossRuns) {
  GeneratorConfig cfg;
  cfg.processors = 4;
  cfg.target_util = Rational(4);
  cfg.horizon = 24;
  cfg.seed = 31;
  const TaskSystem sys = generate_periodic(cfg);
  const BernoulliYield yields(5, 1, 2, kTick, kQuantum - kTick);
  const DvqSchedule a = schedule_dvq(sys, yields);
  const DvqSchedule b = schedule_dvq(sys, yields);
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      ASSERT_EQ(a.placement(ref).start, b.placement(ref).start);
      ASSERT_EQ(a.placement(ref).proc, b.placement(ref).proc);
    }
  }
}

}  // namespace
}  // namespace pfair
