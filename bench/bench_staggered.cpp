// Experiment X5 — the staggered model of Holman & Anderson (related
// work, Sec. 1): distributing quantum boundaries across processors
// removes simultaneous scheduling decisions (their bus-contention
// motivation) at a bounded tardiness cost, since staggering is a special
// case of the DVQ model.
#include <iostream>
#include <map>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X5: staggered vs aligned quanta ===\n\n";

  TextTable t;
  t.header({"M", "max concurrent decisions (aligned)",
            "max concurrent (staggered)", "stag max tardiness (q)",
            "bound ok"});
  bool ok = true;

  for (const int m : {2, 4, 8}) {
    GeneratorConfig cfg;
    cfg.processors = m;
    cfg.target_util = Rational(m);
    cfg.horizon = 24;
    cfg.seed = static_cast<std::uint64_t>(m) * 101;
    const TaskSystem sys = generate_periodic(cfg);
    const FullQuantumYield yields;

    // Aligned (SFQ): all M processors decide at every slot boundary.
    const std::int64_t aligned_concurrency = m;

    StaggeredOptions sopts;
    sopts.log_decisions = true;
    const DvqSchedule stag = schedule_staggered(sys, yields, sopts);
    std::map<std::int64_t, std::int64_t> per_instant;
    for (const DvqDecision& d : stag.decisions()) {
      ++per_instant[d.at.raw_ticks()];
    }
    std::int64_t stag_concurrency = 0;
    for (const auto& [at, n] : per_instant) {
      stag_concurrency = std::max(stag_concurrency, n);
    }

    const TardinessSummary tard = measure_tardiness(sys, stag);
    ok &= stag.complete();
    ok &= stag_concurrency == 1;  // boundaries fully spread out
    ok &= tard.max_ticks < kTicksPerSlot;  // Theorem 3 applies

    t.row({cell(static_cast<std::int64_t>(m)), cell(aligned_concurrency),
           cell(stag_concurrency), cell(tard.max_quanta()),
           tard.max_ticks < kTicksPerSlot ? "yes" : "NO"});
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: staggering reduces worst-case concurrent "
               "decisions from M to 1\nwhile tardiness stays below one "
               "quantum (staggered subset of DVQ, Theorem 3).\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("staggered", run_bench)
