// Parallel seed-sweep driver for the experiment binaries.
//
// Every randomized experiment has the same shape: run `body(seed)` over a
// block of decorrelated seeds on the global thread pool, folding results
// into a handful of thread-safe reducers, then print one table row.  This
// header owns that shape so each bench states only its grid and its body.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/thread_pool.hpp"

namespace pfair::bench {

/// Monotone running maximum over worker threads.  Writes race benignly
/// (CAS loop); read the result after the sweep returns.
///
/// The identity (the value reported when nothing was raised) must be an
/// explicit choice: the historical implicit 0 silently swallows
/// all-negative sweeps (e.g. max lag numerators, signed slack), where
/// the true maximum is below zero.  Default stays 0 for counters and
/// tick measures, which are nonnegative by construction.
class MaxReducer {
 public:
  explicit MaxReducer(std::int64_t identity = 0) : v_{identity} {}

  void raise(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_;
};

/// Event counter ("system schedulable", "theorem violated", ...).
class CountReducer {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool zero() const { return get() == 0; }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Runs `body(seed)` for `count` seeds on the global pool, with seeds
/// drawn from the affine stream i * stride + offset so neighbouring
/// indices do not share low bits with the generator's own mixing.
inline void sweep_seeds(std::int64_t count, std::uint64_t stride,
                        std::uint64_t offset,
                        const std::function<void(std::uint64_t)>& body) {
  global_pool().parallel_for(0, count, [&](std::int64_t i) {
    body(static_cast<std::uint64_t>(i) * stride + offset);
  });
}

}  // namespace pfair::bench
