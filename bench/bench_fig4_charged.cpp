// Experiment F4 — reproduces Figure 4: the Aligned / Olapped / Free
// classification of a DVQ trace and the construction of S_B for the
// Charged subtasks (Sec. 3.2), on a single-processor run as in the
// figure, then on a multiprocessor run for good measure.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

using namespace pfair;

bool show(const TaskSystem& sys, const YieldModel& yields,
          const char* title) {
  std::cout << title << "\n";
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  if (!dvq.complete()) {
    std::cout << "  (truncated run)\n";
    return false;
  }
  RenderOptions ropts;
  ropts.chars_per_slot = 8;
  std::cout << render_dvq_schedule(sys, dvq, ropts) << "\n";

  const SbConstruction sbc = build_sb(sys, dvq);
  std::cout << "classification: " << sbc.classes.aligned << " Aligned, "
            << sbc.classes.olapped << " Olapped, " << sbc.classes.free
            << " Free\n";
  std::cout << "per-subtask:\n";
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      const DvqPlacement& p = dvq.placement(ref);
      std::cout << "  " << sys.task(k).name() << "_"
                << sys.task(k).subtask(s).index << ": S_DQ=" << p.start
                << " c=" << p.cost.to_double() << " -> "
                << to_string(sbc.classes.of(ref));
      const std::int32_t ns =
          sbc.new_seq[static_cast<std::size_t>(k)]
                     [static_cast<std::size_t>(s)];
      if (ns >= 0) {
        std::cout << ", S_B=" << sbc.sb.placement(SubtaskRef{k, ns}).start;
      }
      std::cout << "\n";
    }
  }
  std::cout << "S_B (postponed Olapped starts):\n"
            << render_dvq_schedule(sbc.charged_system, sbc.sb, ropts)
            << "\n";
  const bool ok = sbc.lemma3_holds && sbc.structure_valid &&
                  check_lemma4(sys, dvq, sbc).holds();
  std::cout << "Lemma 3 (postponement monotone): " << std::boolalpha
            << sbc.lemma3_holds << ", structural validity (Lemma 5): "
            << sbc.structure_valid << ", Lemma 4 accounting: "
            << check_lemma4(sys, dvq, sbc).holds() << "\n\n";
  return ok;
}

}  // namespace

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== F4: Fig. 4 — Aligned/Olapped/Free and S_B ===\n\n";
  bool ok = true;

  // Single-processor trace, as in the figure: a chain of early yields
  // creates all three classes.
  {
    std::vector<Task> tasks;
    tasks.push_back(
        Task::periodic("T", Weight(4, 4), 8).with_early_release());
    tasks.push_back(Task::periodic("U", Weight(1, 8), 8));
    const TaskSystem sys(std::move(tasks), 1);
    const BernoulliYield yields(5, 1, 2, Time::ticks(kTicksPerSlot / 4),
                                Time::ticks(kTicksPerSlot / 2));
    ok &= show(sys, yields, "(a) single processor, bursty early yields");
  }

  // Two-processor variant.
  {
    const FigureScenario sc = fig2_scenario(Time::ticks(kTicksPerSlot / 4));
    ok &= show(sc.system, *sc.yields, "(b) the Fig. 2 system");
  }

  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig4_charged", run_bench)
