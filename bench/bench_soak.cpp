// Experiment S1 — scale soak: a large fully-utilized system (M = 16,
// long horizon, thousands of subtasks) through every scheduler, with all
// invariants re-checked and wall-clock throughput reported.  Guards the
// library's O(.) behaviour and shows the bounds do not erode with scale.
#include <sys/resource.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Peak resident set size of the process so far, in bytes (Linux
/// ru_maxrss is KiB).
std::size_t peak_rss_bytes() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

/// S1-large: the flyweight-era tier.  M = 16 at full utilization over a
/// one-million-slot horizon — ~1.6e7 subtasks, a system the eager
/// construction path could not hold in memory (~1 GiB of Subtasks alone
/// before the schedule exists).  Reports the construction / simulation
/// wall split and peak RSS, and requires the whole run under 1 GiB.
/// Gated on PFAIR_SOAK_LARGE=1: minutes-scale, meant for perf sessions,
/// not the default bench sweep.
int run_large_tier(pfair::bench::BenchContext& ctx) {
  using namespace pfair;
  constexpr std::int64_t kLargeHorizon = 1'000'000;
  std::cout << "\n=== S1-large: M = 16, horizon " << kLargeHorizon
            << " (PFAIR_SOAK_LARGE) ===\n\n";

  const std::size_t rss_before = peak_rss_bytes();
  GeneratorConfig cfg;
  cfg.processors = 16;
  cfg.target_util = Rational(16);
  cfg.horizon = kLargeHorizon;
  cfg.seed = 4242;
  const auto t0 = std::chrono::steady_clock::now();
  const TaskSystem sys = generate_periodic(cfg);
  const double construct_ms = ms_since(t0);
  std::cout << sys.summary() << '\n';
  std::cout << "construction: " << construct_ms << " ms, subtask storage "
            << sys.subtask_memory_bytes() << " bytes\n";

  // The genuine O(horizon) simulation — cycle detection off, every one
  // of the million slots decided for real.
  SfqOptions full_opts;
  full_opts.cycle_detect = false;
  const auto t1 = std::chrono::steady_clock::now();
  const SlotSchedule s = schedule_sfq(sys, full_opts);
  const double sim_ms = ms_since(t1);
  const bool valid = s.complete() && check_slot_schedule(sys, s).valid();

  // The same run through steady-state cycle detection, kept compressed:
  // prefix + one stored cycle + tail, no materialization in the timed
  // region.  Min over a few repetitions (the first pays one-off page
  // faults); exactness is proven afterwards by comparing every placement
  // against the full run.
  double ff_ms = 0.0;
  std::optional<CycleSchedule> ff;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t2 = std::chrono::steady_clock::now();
    ff.emplace(schedule_sfq_cyclic(sys));
    const double ms = ms_since(t2);
    if (rep == 0 || ms < ff_ms) ff_ms = ms;
  }
  const CycleSchedule& cyc = *ff;
  bool ff_identical = cyc.complete();
  for (std::int32_t k = 0; k < sys.num_tasks() && ff_identical; ++k) {
    for (std::int32_t q = 0; q < sys.task(k).num_subtasks(); ++q) {
      const SubtaskRef ref{k, q};
      const SlotPlacement p = cyc.placement(ref);
      if (p.slot != s.placement(ref).slot ||
          p.proc != s.placement(ref).proc) {
        ff_identical = false;
        break;
      }
    }
  }
  const CycleStats& st = cyc.stats();
  const double ff_speedup = sim_ms / std::max(ff_ms, 1e-9);

  const std::size_t rss = peak_rss_bytes();
  constexpr std::size_t kGiB = std::size_t{1} << 30;
  const bool under_budget = rss < kGiB;
  std::cout << "simulation:   " << sim_ms << " ms ("
            << static_cast<double>(sys.total_subtasks()) / sim_ms
            << " subtasks/ms)\n";
  std::cout << "fast-forward: " << ff_ms << " ms (" << ff_speedup
            << "x; prefix " << st.prefix_slots << " + cycle "
            << st.cycle_slots << " slots x " << st.cycles_skipped
            << " skipped, " << st.sim_slots << " slots simulated, "
            << (ff_identical ? "bit-identical" : "MISMATCH") << ")\n";
  std::cout << "wall split:   construction "
            << 100.0 * construct_ms / (construct_ms + sim_ms)
            << "% / simulation "
            << 100.0 * sim_ms / (construct_ms + sim_ms) << "%\n";
  std::cout << "peak RSS:     " << static_cast<double>(rss) / (1 << 20)
            << " MiB (" << static_cast<double>(rss_before) / (1 << 20)
            << " MiB at entry)\n";

  ctx.value("large.construct_ms", construct_ms);
  ctx.value("large.sim_ms", sim_ms);
  ctx.value("large.ff_ms", ff_ms);
  ctx.value("large.ff_speedup", ff_speedup);
  ctx.value("large.ff_cycle_slots", static_cast<double>(st.cycle_slots));
  ctx.value("large.ff_cycles_skipped",
            static_cast<double>(st.cycles_skipped));
  ctx.value("large.ff_sim_slots", static_cast<double>(st.sim_slots));
  ctx.value("large.peak_rss_bytes", static_cast<double>(rss));
  ctx.value("large.subtasks", static_cast<double>(sys.total_subtasks()));

  const bool ok = valid && under_budget &&
                  sys.total_subtasks() > 10'000'000 && st.engaged &&
                  ff_identical && ff_speedup >= 100.0;
  std::cout << "shape check (valid schedule, > 1e7 subtasks, peak RSS < "
               "1 GiB, fast-forward engaged, bit-identical, >= 100x): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int run_bench(pfair::bench::BenchContext& ctx) {
  using namespace pfair;
  std::cout << "=== S1: scale soak (M = 16, horizon 240) ===\n\n";

  GeneratorConfig cfg;
  cfg.processors = 16;
  cfg.target_util = Rational(16);
  cfg.horizon = 240;
  cfg.seed = 4242;
  const TaskSystem sys = generate_periodic(cfg);
  std::cout << sys.summary() << "\n\n";
  bool ok = sys.total_subtasks() > 3000;

  TextTable t;
  t.header({"scheduler", "wall ms", "subtasks/ms", "max tardiness (q)",
            "invariants"});

  const auto add = [&](const char* name, double ms, std::int64_t tard,
                       bool good) {
    t.row({name, cell(ms, 1),
           cell(static_cast<double>(sys.total_subtasks()) / ms, 0),
           cell(static_cast<double>(tard) /
                static_cast<double>(kTicksPerSlot)),
           good ? "ok" : "VIOLATED"});
  };

  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_sfq(sys);
    const double ms = ms_since(t0);
    const bool good =
        s.complete() && check_slot_schedule(sys, s).valid();
    ok &= good;
    add("PD2 / SFQ (scan)", ms, measure_tardiness(sys, s).max_ticks, good);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_sfq_indexed(sys);
    const double ms = ms_since(t0);
    const bool good =
        s.complete() && check_slot_schedule(sys, s).valid();
    ok &= good;
    add("PD2 / SFQ (indexed)", ms, measure_tardiness(sys, s).max_ticks,
        good);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_pdb(sys);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard <= kTicksPerSlot;
    ok &= good;
    add("PD^B", ms, tard, good);
  }
  {
    const BernoulliYield yields(9, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    const auto t0 = std::chrono::steady_clock::now();
    const DvqSchedule s = schedule_dvq(sys, yields);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard < kTicksPerSlot &&
                      check_dvq_schedule(sys, s, kQuantum).valid();
    ok &= good;
    add("PD2 / DVQ", ms, tard, good);
  }
  {
    const FullQuantumYield yields;
    const auto t0 = std::chrono::steady_clock::now();
    const DvqSchedule s = schedule_staggered(sys, yields);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard < kTicksPerSlot;
    ok &= good;
    add("PD2 / staggered", ms, tard, good);
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: every invariant holds at scale; the "
               "indexed scheduler matches the\nscanner's schedule at "
               "lower (or comparable) cost; tardiness bounds are "
               "unchanged.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';

  const char* large = std::getenv("PFAIR_SOAK_LARGE");
  if (large != nullptr && std::strcmp(large, "1") == 0) {
    const int rc = run_large_tier(ctx);
    if (rc != 0) return rc;
  }
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("soak", run_bench)
