// Experiment S1 — scale soak: a large fully-utilized system (M = 16,
// long horizon, thousands of subtasks) through every scheduler, with all
// invariants re-checked and wall-clock throughput reported.  Guards the
// library's O(.) behaviour and shows the bounds do not erode with scale.
#include <chrono>
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== S1: scale soak (M = 16, horizon 240) ===\n\n";

  GeneratorConfig cfg;
  cfg.processors = 16;
  cfg.target_util = Rational(16);
  cfg.horizon = 240;
  cfg.seed = 4242;
  const TaskSystem sys = generate_periodic(cfg);
  std::cout << sys.summary() << "\n\n";
  bool ok = sys.total_subtasks() > 3000;

  TextTable t;
  t.header({"scheduler", "wall ms", "subtasks/ms", "max tardiness (q)",
            "invariants"});

  const auto add = [&](const char* name, double ms, std::int64_t tard,
                       bool good) {
    t.row({name, cell(ms, 1),
           cell(static_cast<double>(sys.total_subtasks()) / ms, 0),
           cell(static_cast<double>(tard) /
                static_cast<double>(kTicksPerSlot)),
           good ? "ok" : "VIOLATED"});
  };

  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_sfq(sys);
    const double ms = ms_since(t0);
    const bool good =
        s.complete() && check_slot_schedule(sys, s).valid();
    ok &= good;
    add("PD2 / SFQ (scan)", ms, measure_tardiness(sys, s).max_ticks, good);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_sfq_indexed(sys);
    const double ms = ms_since(t0);
    const bool good =
        s.complete() && check_slot_schedule(sys, s).valid();
    ok &= good;
    add("PD2 / SFQ (indexed)", ms, measure_tardiness(sys, s).max_ticks,
        good);
  }
  {
    const auto t0 = std::chrono::steady_clock::now();
    const SlotSchedule s = schedule_pdb(sys);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard <= kTicksPerSlot;
    ok &= good;
    add("PD^B", ms, tard, good);
  }
  {
    const BernoulliYield yields(9, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    const auto t0 = std::chrono::steady_clock::now();
    const DvqSchedule s = schedule_dvq(sys, yields);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard < kTicksPerSlot &&
                      check_dvq_schedule(sys, s, kQuantum).valid();
    ok &= good;
    add("PD2 / DVQ", ms, tard, good);
  }
  {
    const FullQuantumYield yields;
    const auto t0 = std::chrono::steady_clock::now();
    const DvqSchedule s = schedule_staggered(sys, yields);
    const double ms = ms_since(t0);
    const std::int64_t tard = measure_tardiness(sys, s).max_ticks;
    const bool good = s.complete() && tard < kTicksPerSlot;
    ok &= good;
    add("PD2 / staggered", ms, tard, good);
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: every invariant holds at scale; the "
               "indexed scheduler matches the\nscanner's schedule at "
               "lower (or comparable) cost; tardiness bounds are "
               "unchanged.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("soak", run_bench)
