#include "bench_main.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string_view>

#include "io/json.hpp"
#include "io/prometheus.hpp"

#ifndef PFAIR_GIT_DESCRIBE
#define PFAIR_GIT_DESCRIBE "unknown"
#endif

namespace pfair::bench {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

struct WallStats {
  double min = 0.0, median = 0.0, max = 0.0;
};

WallStats wall_stats(std::vector<double> ms) {
  WallStats w;
  if (ms.empty()) return w;
  std::sort(ms.begin(), ms.end());
  w.min = ms.front();
  w.max = ms.back();
  const std::size_t n = ms.size();
  w.median = n % 2 == 1 ? ms[n / 2] : (ms[n / 2 - 1] + ms[n / 2]) / 2.0;
  return w;
}

}  // namespace

void BenchContext::value(const std::string& name, double v) {
  for (auto& [k, old] : values_) {
    if (k == name) {
      old = v;
      return;
    }
  }
  values_.emplace_back(name, v);
}

std::string bench_report_json(const BenchReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << R"(  "schema": "pfair-bench-v1",)" << "\n";
  os << R"(  "bench": ")" << json_escape(report.bench) << "\",\n";
  os << R"(  "git": ")" << json_escape(PFAIR_GIT_DESCRIBE) << "\",\n";
  os << R"(  "ok": )" << (report.exit_code == 0 ? "true" : "false") << ",\n";
  os << R"(  "exit_code": )" << report.exit_code << ",\n";
  os << R"(  "repetitions": )" << report.wall_ms.size() << ",\n";
  const WallStats w = wall_stats(report.wall_ms);
  os << R"(  "wall_ms": {"min": )" << fmt_double(w.min) << R"(, "median": )"
     << fmt_double(w.median) << R"(, "max": )" << fmt_double(w.max)
     << R"(, "all": [)";
  for (std::size_t i = 0; i < report.wall_ms.size(); ++i) {
    if (i != 0) os << ", ";
    os << fmt_double(report.wall_ms[i]);
  }
  os << "]},\n";
  os << R"(  "values": {)";
  bool first = true;
  if (report.ctx != nullptr) {
    for (const auto& [k, v] : report.ctx->values()) {
      if (!first) os << ", ";
      first = false;
      os << '"' << json_escape(k) << "\": " << fmt_double(v);
    }
  }
  os << "},\n";
  os << R"(  "cases": [)";
  if (report.ctx != nullptr) {
    first = true;
    for (const BenchCase& c : report.ctx->cases()) {
      if (!first) os << ", ";
      first = false;
      os << R"({"name": ")" << json_escape(c.name) << R"(", "ns_per_op": )"
         << fmt_double(c.ns_per_op) << R"(, "iterations": )" << c.iterations
         << "}";
    }
  }
  os << "],\n";
  os << R"(  "profile": )";
  if (report.profiled) {
    os << profile_to_json(report.profile, 2);
  } else {
    os << "null";
  }
  os << ",\n";
  os << R"(  "metrics": )";
  if (report.ctx != nullptr) {
    os << metrics_to_json(report.ctx->metrics().snapshot(), 2);
  } else {
    os << "{}";
  }
  os << "\n}\n";
  return os.str();
}

std::string extract_json_flag(int& argc, char** argv,
                              const std::string& name) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string_view arg = argv[r];
    if (arg == "--json") {
      path = "BENCH_" + name + ".json";
    } else if (arg.rfind("--json=", 0) == 0) {
      path = std::string(arg.substr(std::strlen("--json=")));
      if (path.empty()) path = "BENCH_" + name + ".json";
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

int bench_main(int argc, char** argv, const char* name,
               int (*fn)(BenchContext&)) {
  const std::string bench_name = name;
  const std::string json_path = extract_json_flag(argc, argv, bench_name);
  std::size_t repeat = 1;
  bool profile = false;
  std::string prom_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::atoll(argv[i] + std::strlen("--repeat="))));
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--prom") {
      prom_path = "BENCH_" + bench_name + ".prom";
    } else if (arg.rfind("--prom=", 0) == 0) {
      prom_path = std::string(arg.substr(std::strlen("--prom=")));
      if (prom_path.empty()) prom_path = "BENCH_" + bench_name + ".prom";
    } else {
      std::cerr << "usage: bench_" << bench_name
                << " [--json[=PATH]] [--prom[=PATH]] [--profile]"
                   " [--repeat=N]\n";
      return 2;
    }
  }

  BenchReport report;
  report.bench = bench_name;
  std::unique_ptr<BenchContext> ctx;
  for (std::size_t rep = 0; rep < repeat; ++rep) {
    // Fresh context per repetition: metrics describe one run, not an
    // accumulation over all of them.  Same for the profiler: the
    // report's profile covers exactly the final repetition.
    auto fresh = std::make_unique<BenchContext>();
    fresh->set_profiling(profile);
    prof::Profiler profiler;
    const auto t0 = std::chrono::steady_clock::now();
    {
      prof::ProfScope scope(profile ? &profiler : nullptr);
      report.exit_code = fn(*fresh);
    }
    const auto t1 = std::chrono::steady_clock::now();
    report.wall_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (profile) {
      report.profiled = true;
      report.profile = profiler.snapshot();
      prof::publish_profile(report.profile, fresh->metrics());
    }
    ctx = std::move(fresh);
  }
  report.ctx = ctx.get();
  if (report.profiled) {
    std::cerr << "bench_" << bench_name << ": profile ("
              << report.profile.clock << ")\n"
              << report.profile.table();
  }

  if (!prom_path.empty() && ctx != nullptr) {
    std::ofstream out(prom_path);
    if (!out) {
      std::cerr << "bench_" << bench_name << ": cannot open " << prom_path
                << " for writing\n";
      return 2;
    }
    out << metrics_to_prometheus(ctx->metrics().snapshot());
    std::cerr << "bench_" << bench_name << ": metrics written to "
              << prom_path << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench_" << bench_name << ": cannot open " << json_path
                << " for writing\n";
      return 2;
    }
    out << bench_report_json(report);
    std::cerr << "bench_" << bench_name << ": report written to " << json_path
              << "\n";
  }
  return report.exit_code;
}

}  // namespace pfair::bench
