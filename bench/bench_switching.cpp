// Experiment X9 — scheduler-mechanism cost proxies across quantum
// models: context switches, migrations and job breaks (the quantities
// implementation studies charge for — cache refills, IPIs, queue
// operations).  The paper's motivation bullets predict: DVQ removes the
// idling of SFQ without adding mechanism; early release further cuts job
// breaks by letting a job's subtasks run back-to-back.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X9: context switches / migrations / job breaks ===\n\n";

  constexpr int kM = 4;
  GeneratorConfig cfg;
  cfg.processors = kM;
  cfg.target_util = Rational(kM);
  cfg.weights = WeightClass::kHeavy;  // multi-subtask jobs
  cfg.horizon = 40;
  cfg.seed = 42;
  const TaskSystem sys = generate_periodic(cfg);
  const TaskSystem er = sys.with_early_release();
  const BernoulliYield yields(7, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  std::cout << sys.summary() << "\n\n";

  TextTable t;
  t.header({"model", "ctx switches", "migrations", "job breaks",
            "migr/subtask"});
  bool ok = true;

  const auto add = [&t](const char* name, const SwitchingStats& st) {
    t.row({name, cell(st.context_switches), cell(st.migrations),
           cell(st.job_breaks), cell(st.migrations_per_subtask())});
  };

  const SwitchingStats sfq = measure_switching(sys, schedule_sfq(sys));
  add("PD2 / SFQ", sfq);
  const SwitchingStats pdb = measure_switching(sys, schedule_pdb(sys));
  add("PD^B / SFQ", pdb);
  const SwitchingStats dvq =
      measure_switching(sys, schedule_dvq(sys, yields));
  add("PD2 / DVQ", dvq);
  const SwitchingStats dvq_er =
      measure_switching(er, schedule_dvq(er, yields));
  add("PD2 / DVQ + ER", dvq_er);
  const SwitchingStats stag =
      measure_switching(sys, schedule_staggered(sys, yields));
  add("PD2 / staggered", stag);

  std::cout << t.str() << "\n";

  // Shape: early release must not increase job breaks; every model
  // schedules the same number of subtasks.
  ok &= dvq_er.job_breaks <= dvq.job_breaks;
  ok &= sfq.subtasks == dvq.subtasks && dvq.subtasks == stag.subtasks;

  std::cout << "Expected shape: DVQ's mechanism counts stay in the same "
               "regime as SFQ's (the\nreclamation is free of extra "
               "scheduler invocations), and early release strictly\ncuts "
               "job breaks by running a job's subtasks back-to-back.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("switching", run_bench)
