// Experiment F1 — reproduces Figure 1 of the paper: the Pfair windows of
// (a) a periodic task of weight 3/4, (b) its intra-sporadic variant with
// T_3 released one slot late, (c) the GIS variant with T_2 absent.
//
// Output: the window layouts, exactly as the figure draws them, plus an
// automated check of every printed value against Eqs. (2)-(4).
#include <iostream>
#include <sstream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

using namespace pfair;

/// Draws each subtask's window as a row of dashes, fig.-1 style.
void draw(const TaskSystem& sys, std::int64_t width) {
  const Task& t = sys.task(0);
  std::cout << "   t:  ";
  for (std::int64_t i = 0; i <= width; ++i) std::cout << i % 10;
  std::cout << '\n';
  for (std::int64_t n = 0; n < t.num_subtasks(); ++n) {
    const Subtask s = t.subtask_at(n);
    std::ostringstream row;
    row << "  T_" << s.index << ":  ";
    for (std::int64_t i = 0; i < s.release; ++i) row << ' ';
    row << '[';
    for (std::int64_t i = s.release + 1; i < s.deadline; ++i) row << '-';
    row << ')';
    std::cout << row.str() << "   r=" << s.release << " d=" << s.deadline
              << " b=" << (s.bbit ? 1 : 0) << " D=" << s.group_deadline
              << '\n';
  }
}

bool check_against_formulas(const TaskSystem& sys) {
  const Task& t = sys.task(0);
  bool ok = true;
  for (std::int64_t n = 0; n < t.num_subtasks(); ++n) {
    const Subtask s = t.subtask_at(n);
    ok &= s.release == s.theta + pseudo_release(t.weight(), s.index);
    ok &= s.deadline == s.theta + pseudo_deadline(t.weight(), s.index);
    ok &= s.bbit == b_bit(t.weight(), s.index);
  }
  return ok;
}

}  // namespace

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== F1: Fig. 1 — Pfair windows of a weight-3/4 task ===\n\n";

  bool ok = true;

  std::cout << "(a) periodic: every window as early as possible\n";
  const TaskSystem a = fig1_periodic();
  draw(a, 8);
  ok &= check_against_formulas(a);
  // The paper's values: [0,2) [1,3) [2,4), repeating shifted by 4.
  ok &= a.task(0).subtask(0).release == 0 && a.task(0).subtask(0).deadline == 2;
  ok &= a.task(0).subtask(1).release == 1 && a.task(0).subtask(1).deadline == 3;
  ok &= a.task(0).subtask(2).release == 2 && a.task(0).subtask(2).deadline == 4;
  ok &= a.task(0).subtask(3).release == 4 && a.task(0).subtask(3).deadline == 6;

  std::cout << "\n(b) intra-sporadic: T_3 becomes eligible one slot late\n";
  const TaskSystem b = fig1_intra_sporadic();
  draw(b, 8);
  ok &= check_against_formulas(b);
  ok &= b.task(0).subtask(2).release == 3 && b.task(0).subtask(2).deadline == 5;

  std::cout << "\n(c) generalized intra-sporadic: T_2 absent, T_3 late\n";
  const TaskSystem c = fig1_gis();
  draw(c, 8);
  ok &= check_against_formulas(c);
  ok &= c.task(0).num_subtasks() == 2 && c.task(0).subtask(1).index == 3;

  std::cout << "\nshape check vs Eqs. (2)-(4): " << (ok ? "PASS" : "FAIL")
            << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig1_windows", run_bench)
