// Experiment X8 — hierarchical Pfair (supertasking): component groups
// served through a single Pfair task.  Measures (a) worst-case-grant
// service of job-level components at the exact component-sum weight,
// (b) the capacity cost of rounding the supertask weight to a bounded
// period, (c) an end-to-end multiprocessor run with groups + free tasks.
#include <iostream>
#include <numeric>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X8: supertasking (hierarchical Pfair) ===\n\n";
  bool ok = true;

  // (a) worst-case grants over a component grid.
  std::int64_t groups_checked = 0, groups_missed = 0;
  for (std::int64_t p1 = 2; p1 <= 8; ++p1) {
    for (std::int64_t p2 = p1; p2 <= 10; ++p2) {
      for (std::int64_t e1 = 1; e1 < p1; ++e1) {
        const Rational sum = Rational(e1, p1) + Rational(1, p2);
        if (sum > Rational(1)) continue;
        SupertaskGroup g;
        g.name = "S";
        g.components = {Weight(e1, p1), Weight(1, p2)};
        g.super_weight = Weight(sum.num(), sum.den());
        ++groups_checked;
        if (!run_group_worst_case(g, 3 * std::lcm(p1, p2) + 12).all_met()) {
          ++groups_missed;
        }
      }
    }
  }
  std::cout << "(a) worst-case (window-end) grants, exact-sum weight: "
            << groups_missed << "/" << groups_checked
            << " component groups missed\n";
  ok &= groups_missed == 0;

  // (b) capacity cost of weight rounding.
  TextTable t;
  t.header({"component sum", "period cap", "inflated weight", "overhead %"});
  for (const auto& [n, d] : std::vector<std::pair<std::int64_t,
                                                  std::int64_t>>{
           {5, 12}, {7, 24}, {3, 7}, {11, 30}}) {
    for (const std::int64_t cap : {4, 8, 16}) {
      const Weight w = inflate_weight(Rational(n, d), cap);
      const Rational overhead = w.value() - Rational(n, d);
      t.row({Rational(n, d).str(), cell(cap), w.str(),
             cell(100.0 * overhead.to_double() /
                      Rational(n, d).to_double(),
                  1)});
      ok &= w.value() >= Rational(n, d);
    }
  }
  std::cout << "\n(b) weight-rounding overhead:\n" << t.str();

  // (c) end-to-end: two groups and two free tasks on two processors.
  SupertaskGroup g1{"S1", {Weight(1, 4), Weight(1, 4)}, Weight(1, 2)};
  SupertaskGroup g2{"S2", {Weight(1, 3), Weight(1, 6)}, Weight(1, 2)};
  const SupertaskResult res =
      run_supertasked({g1, g2}, {Weight(1, 2), Weight(1, 2)}, 2, 48);
  std::cout << "\n(c) PD2 outer schedule, 2 groups + 2 free tasks, M=2: ";
  std::int64_t missed = 0, total = 0;
  for (const JobScheduleResult& r : res.group_jobs) {
    missed += r.missed_jobs;
    total += r.total_jobs;
  }
  std::cout << missed << "/" << total << " component jobs missed, "
            << res.free_misses << " free-task misses\n\n";
  ok &= res.free_misses == 0 && missed == 0;

  std::cout << "Expected shape: zero misses in (a) and (c) for job-level "
               "components; rounding\noverhead in (b) shrinks as the "
               "period cap grows.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("supertask", run_bench)
