// Experiment X1 — the motivation bullets of Sec. 1: the SFQ model wastes
// the remainder of every early-completed quantum; staggering does not
// help (it is not work-conserving); DVQ reclaims the time.  Measures the
// makespan and idle fraction of the same workload + yields under the
// three quantum models, as the early-yield rate grows.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X1: reclaiming unused quantum time ===\n\n";

  constexpr int kM = 4;
  constexpr std::int64_t kHorizon = 40;
  GeneratorConfig cfg;
  cfg.processors = kM;
  cfg.target_util = Rational(kM);
  cfg.horizon = kHorizon;
  cfg.seed = 99;
  const TaskSystem sys = generate_periodic(cfg);
  std::cout << sys.summary() << "\n\n";

  TextTable t;
  t.header({"yield p", "work (q)", "SFQ span", "stag span", "DVQ span",
            "DVQ idle %", "reclaimed %"});
  bool ok = true;

  for (const auto& [num, den] : std::vector<std::pair<std::int64_t,
                                                      std::int64_t>>{
           {0, 1}, {1, 4}, {1, 2}, {3, 4}, {1, 1}}) {
    const BernoulliYield yields(7, num, den, Time::ticks(kTicksPerSlot / 4),
                                Time::ticks(3 * kTicksPerSlot / 4));
    std::int64_t work = 0;
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        work += yields.checked_cost(sys, SubtaskRef{k, s}).raw_ticks();
      }
    }

    // SFQ: every subtask occupies its whole slot regardless of c.
    const SlotSchedule sfq = schedule_sfq(sys);
    const std::int64_t sfq_span = sfq.horizon();

    const DvqSchedule stag = schedule_staggered(sys, yields);
    const DvqSchedule dvq = schedule_dvq(sys, yields);
    const double dvq_span = dvq.makespan().to_double();
    const double stag_span = stag.makespan().to_double();

    const double dvq_capacity = dvq.makespan().to_double() * kM;
    const double work_q = static_cast<double>(work) /
                          static_cast<double>(kTicksPerSlot);
    const double dvq_idle = 100.0 * (dvq_capacity - work_q) / dvq_capacity;
    const double sfq_capacity = static_cast<double>(sfq_span * kM);
    const double reclaimed = 100.0 * (sfq_capacity - dvq_capacity) /
                             sfq_capacity;

    // DVQ must never finish later than SFQ's horizon, and reclaim must
    // grow with the yield rate.
    ok &= dvq_span <= static_cast<double>(sfq_span) + 1e-9;
    ok &= stag_span <= static_cast<double>(sfq_span) + 1.0;  // + stagger

    t.row({cell_ratio(num, den, 2), cell(work_q, 1),
           cell(static_cast<double>(sfq_span), 2), cell(stag_span, 2),
           cell(dvq_span, 2), cell(dvq_idle, 1), cell(reclaimed, 1)});
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: with no yields all models tie; as yields "
               "grow, DVQ's span\nshrinks below the SFQ horizon (reclaimed "
               "> 0) while SFQ stays pinned and\nstaggering only shifts "
               "boundaries.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("idle_reclaim", run_bench)
