// Experiment F2 — reproduces Figure 2: the same six-task, two-processor
// system (A,B,C of weight 1/6; D,E,F of weight 1/2) under
//   (a) PD2 in the SFQ model       — no misses (PD2 is optimal),
//   (b) PD2 in the DVQ model       — A_1 and F_1 yield delta early;
//       B_1/C_1 usurp the freed processors and F_2 misses by 1 - delta,
//   (c) PD^B in the SFQ model      — the slot-granularity image of (b):
//       F_2 misses by exactly one quantum.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext& ctx) {
  using namespace pfair;
  const Time delta = Time::ticks(kTicksPerSlot / 8);  // rendering-friendly
  const FigureScenario sc = fig2_scenario(delta);
  const TaskSystem& sys = sc.system;
  std::cout << "=== F2: Fig. 2 — SFQ vs DVQ vs PD^B ===\n";
  std::cout << sys.summary() << ", delta = " << delta.to_double()
            << " quantum\n\n";
  bool ok = true;

  // (a) SFQ.
  SfqOptions sopts;
  sopts.metrics = &ctx.metrics();
  const SlotSchedule sfq = schedule_sfq(sys, sopts);
  std::cout << "(a) PD2, SFQ model:\n"
            << render_slot_schedule(sys, sfq) << "\n";
  const TardinessSummary ta = measure_tardiness(sys, sfq);
  std::cout << "    max tardiness: " << ta.max_quanta() << " quanta\n\n";
  ok &= ta.max_ticks == 0;

  // (b) DVQ.
  RenderOptions ropts;
  ropts.chars_per_slot = 8;
  DvqOptions dopts;
  dopts.metrics = &ctx.metrics();
  const DvqSchedule dvq = schedule_dvq(sys, *sc.yields, dopts);
  std::cout << "(b) PD2, DVQ model (A_1, F_1 yield early):\n"
            << render_dvq_schedule(sys, dvq, ropts) << "\n";
  const TardinessSummary tb = measure_tardiness(sys, dvq);
  std::cout << "    max tardiness: " << tb.max_quanta()
            << " quanta (paper: F_2 misses by 1 - delta = "
            << 1.0 - delta.to_double() << ")\n\n";
  ok &= tb.max_ticks == kTicksPerSlot - delta.raw_ticks();
  ok &= tb.worst == (SubtaskRef{5, 1});  // F_2

  // (c) PD^B.
  const SlotSchedule pdb = schedule_pdb(sys);
  std::cout << "(c) PD^B, SFQ model (allocations of (b) postponed to slot "
               "boundaries):\n"
            << render_slot_schedule(sys, pdb) << "\n";
  const TardinessSummary tc = measure_tardiness(sys, pdb);
  std::cout << "    max tardiness: " << tc.max_quanta() << " quanta\n\n";
  ok &= tc.max_ticks == kTicksPerSlot;
  ok &= tc.worst == (SubtaskRef{5, 1});

  // The ordering the analysis establishes: tardiness(DVQ) <= ceil(...) =
  // tardiness(PD^B) <= 1 quantum.
  ok &= tb.max_ticks <= tc.max_ticks && tc.max_ticks <= kTicksPerSlot;

  ctx.value("sfq_max_tardiness_quanta", ta.max_quanta());
  ctx.value("dvq_max_tardiness_quanta", tb.max_quanta());
  ctx.value("pdb_max_tardiness_quanta", tc.max_quanta());

  std::cout << "shape check (Theorem 1 chain on this instance): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig2_models", run_bench)
