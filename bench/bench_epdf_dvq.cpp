// Experiment X3 — the paper's closing claim: "tardiness bounds guaranteed
// by previously-proposed suboptimal Pfair algorithms are worsened by at
// most one quantum only" under the DVQ model.  EPDF is the suboptimal
// algorithm of record; this bench measures EPDF's max tardiness under
// SFQ and under DVQ on paired workloads and reports the per-system gap.
#include <atomic>
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X3: EPDF under SFQ vs DVQ ===\n\n";

  constexpr std::int64_t kSeeds = 40;
  TextTable t;
  t.header({"M", "class", "sfq max (q)", "dvq max (q)", "worst gap (q)",
            "gap <= 1"});
  bool ok = true;

  struct Cfg {
    int m;
    WeightClass cls;
  };
  for (const Cfg c : {Cfg{2, WeightClass::kMixed}, Cfg{3, WeightClass::kMixed},
                      Cfg{3, WeightClass::kHeavy},
                      Cfg{4, WeightClass::kHeavy},
                      Cfg{4, WeightClass::kUniform}}) {
    std::atomic<std::int64_t> sfq_max{0}, dvq_max{0}, gap_max{
        std::numeric_limits<std::int64_t>::min()};
    std::atomic<std::int64_t> gap_bad{0};
    global_pool().parallel_for(0, kSeeds, [&](std::int64_t i) {
      const auto seed = static_cast<std::uint64_t>(i) * 17 + 3;
      GeneratorConfig cfg;
      cfg.processors = c.m;
      cfg.target_util = Rational(c.m);
      cfg.horizon = 24;
      cfg.weights = c.cls;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                  kQuantum - kTick);
      SfqOptions so;
      so.policy = Policy::kEpdf;
      const std::int64_t sfq =
          measure_tardiness(sys, schedule_sfq(sys, so)).max_ticks;
      DvqOptions dopts;
      dopts.policy = Policy::kEpdf;
      const std::int64_t dvq =
          measure_tardiness(sys, schedule_dvq(sys, yields, dopts)).max_ticks;

      auto raise = [](std::atomic<std::int64_t>& a, std::int64_t v) {
        std::int64_t cur = a.load();
        while (v > cur && !a.compare_exchange_weak(cur, v)) {
        }
      };
      raise(sfq_max, sfq);
      raise(dvq_max, dvq);
      raise(gap_max, dvq - sfq);
      // The "+ <= 1 quantum" claim, per paired system.
      if (dvq - sfq > kTicksPerSlot) ++gap_bad;
    });
    ok &= gap_bad.load() == 0;
    auto q = [](std::int64_t ticks) {
      return cell(static_cast<double>(ticks) /
                  static_cast<double>(kTicksPerSlot));
    };
    t.row({cell(static_cast<std::int64_t>(c.m)), to_string(c.cls),
           q(sfq_max.load()), q(dvq_max.load()), q(gap_max.load()),
           gap_bad.load() == 0 ? "yes" : "NO"});
  }
  std::cout << t.str() << "\n";
  std::cout << kSeeds
            << " fully-utilized systems per row.  Expected shape: EPDF "
               "already misses under SFQ\nfor M >= 3 heavy mixes; moving "
               "to DVQ adds at most one quantum per system.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("epdf_dvq", run_bench)
