// Experiment T1 — audits PD^B runs against Table 1 (the PD^B priority
// definition).  For every slot of every run it checks, from the trace:
//   1. subtasks in PB are never chosen in the first M-p decisions (unless
//      nothing outside PB was ready);
//   2. the final p decisions are in strict PD2 order over everything that
//      remained ready;
//   3. a subtask in DB is never blocked: no subtask with strictly lower
//      PD2 priority is scheduled in a slot that leaves a DB subtask
//      waiting;
//   4. within each set, selections follow PD2 order.
#include <iostream>
#include <map>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

using namespace pfair;

struct Audit {
  std::int64_t slots = 0;
  std::int64_t decisions = 0;
  std::int64_t pb_early = 0;      // violation of (1)
  std::int64_t strict_bad = 0;    // violation of (2)
  std::int64_t db_blocked = 0;    // violation of (3)
  std::int64_t set_order_bad = 0; // violation of (4)

  [[nodiscard]] bool clean() const {
    return pb_early == 0 && strict_bad == 0 && db_blocked == 0 &&
           set_order_bad == 0;
  }
};

void audit_run(const TaskSystem& sys, Audit* a) {
  PdbTrace trace;
  PdbOptions opts;
  opts.trace = &trace;
  const SlotSchedule sched = schedule_pdb(sys, opts);
  if (!sched.complete()) return;
  const PriorityOrder pd2(sys, Policy::kPd2);

  // Group decisions by slot.
  std::map<std::int64_t, std::vector<const PdbDecision*>> by_slot;
  for (const PdbDecision& d : trace.decisions) {
    by_slot[d.slot].push_back(&d);
  }
  std::map<std::int64_t, const PdbTrace::SlotInfo*> info;
  for (const PdbTrace::SlotInfo& s : trace.slots) info[s.slot] = &s;

  for (const auto& [slot, decs] : by_slot) {
    ++a->slots;
    const PdbTrace::SlotInfo* si = info.at(slot);
    const std::int64_t m = sys.processors();
    const std::int64_t p = si->pb;
    std::map<PdbSet, const PdbDecision*> last_of_set;
    const PdbDecision* prev_strict = nullptr;
    // A PB pick in the first M-p decisions is legal only in the
    // degenerate case where every EB/DB candidate has already been
    // scheduled (nothing else was ready).
    std::int64_t remaining_eb_db = si->eb + si->db;
    for (const PdbDecision* d : decs) {
      ++a->decisions;
      // (1) PB excluded early unless EB and DB ran dry.
      if (d->decision <= m - p && d->from == PdbSet::kPB &&
          remaining_eb_db > 0) {
        ++a->pb_early;
      }
      if (d->from != PdbSet::kPB) --remaining_eb_db;
      // (2) strict PD2 in the final p decisions (among those decisions'
      // own sequence; later strict picks cannot outrank earlier ones).
      if (d->decision > m - p) {
        if (prev_strict != nullptr &&
            pd2.strictly_higher(d->chosen, prev_strict->chosen)) {
          ++a->strict_bad;
        }
        prev_strict = d;
      }
      // (4) within-set PD2 order.
      const auto it = last_of_set.find(d->from);
      if (it != last_of_set.end() &&
          pd2.strictly_higher(d->chosen, it->second->chosen)) {
        ++a->set_order_bad;
      }
      last_of_set[d->from] = d;
    }
    // (3) DB never blocked: every unserved DB subtask must outrank no
    // scheduled one — i.e. nothing scheduled in this slot has strictly
    // lower PD2 priority than a waiting DB subtask.
    for (const auto& [ref, set] : si->unserved) {
      if (set != PdbSet::kDB) continue;
      for (const PdbDecision* d : decs) {
        if (pd2.strictly_higher(ref, d->chosen)) {
          ++a->db_blocked;
          break;
        }
      }
    }
  }
}

}  // namespace

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== T1: Table 1 — PD^B priority-definition audit ===\n\n";
  Audit audit;

  // The figure system plus a randomized sweep.
  audit_run(fig6_system(), &audit);
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    GeneratorConfig cfg;
    cfg.processors = static_cast<int>(2 + seed % 3);
    cfg.target_util = Rational(cfg.processors);
    cfg.horizon = 16;
    cfg.seed = seed;
    audit_run(generate_periodic(cfg), &audit);
  }

  TextTable t;
  t.header({"check", "violations"});
  t.row({"PB chosen in first M-p decisions", cell(audit.pb_early)});
  t.row({"final p decisions not strict PD2", cell(audit.strict_bad)});
  t.row({"DB subtask blocked", cell(audit.db_blocked)});
  t.row({"within-set order not PD2", cell(audit.set_order_bad)});
  std::cout << t.str() << "\n";
  std::cout << "audited " << audit.slots << " slots / " << audit.decisions
            << " decisions\n";
  std::cout << "shape check: " << (audit.clean() ? "PASS" : "FAIL") << '\n';
  return audit.clean() ? 0 : 1;
}

PFAIR_BENCH_MAIN("table1_pdb", run_bench)
