// Experiment X7 — dynamic task systems (joins and leaves at run time,
// expressed in the GIS model).  Admission control retains a departed
// task's share until the deadline (light) or group deadline (heavy,
// mid-cascade) of its final subtask.  Measures: admitted scenarios meet
// every deadline under PD2 and stay under one quantum under DVQ;
// rejected scenarios, when forced, miss.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X7: dynamic joins/leaves with admission control ===\n\n";

  TextTable t;
  t.header({"M", "scenarios", "tasks (avg)", "peak util (max)",
            "PD2 misses", "DVQ max tard (q)"});
  bool ok = true;

  for (const int m : {2, 3, 4}) {
    std::int64_t total_tasks = 0, pd2_misses = 0;
    double peak = 0;
    std::int64_t dvq_max = 0;
    constexpr std::int64_t kScenarios = 20;
    for (std::int64_t i = 0; i < kScenarios; ++i) {
      Rng rng(static_cast<std::uint64_t>(i) * 11 + 5);
      std::vector<DynamicTaskSpec> specs;
      for (int attempt = 0; attempt < 50; ++attempt) {
        DynamicTaskSpec s;
        s.name = "T" + std::to_string(attempt);
        const std::int64_t p = 2 + rng.uniform(0, 8);
        s.weight = Weight(rng.uniform(1, p - 1), p);
        s.join = rng.uniform(0, 24);
        s.count = rng.uniform(1, 8);
        specs.push_back(s);
        if (!build_dynamic(specs, m).admitted) specs.pop_back();
      }
      const DynamicBuildResult built = build_dynamic(specs, m);
      total_tasks += static_cast<std::int64_t>(specs.size());
      peak = std::max(peak, built.peak_util.to_double());
      const TaskSystem sys = build_dynamic_system(specs, m);

      const SlotSchedule sched = schedule_sfq(sys);
      const TardinessSummary sum = measure_tardiness(sys, sched);
      if (sum.max_ticks > 0 || sum.unscheduled > 0) ++pd2_misses;

      const BernoulliYield yields(static_cast<std::uint64_t>(i) + 1, 1, 2,
                                  Time::ticks(kTicksPerSlot / 2),
                                  kQuantum - kTick);
      const DvqSchedule dvq = schedule_dvq(sys, yields);
      dvq_max =
          std::max(dvq_max, measure_tardiness(sys, dvq).max_ticks);
    }
    ok &= pd2_misses == 0 && dvq_max < kTicksPerSlot;
    t.row({cell(static_cast<std::int64_t>(m)), cell(kScenarios),
           cell(static_cast<double>(total_tasks) /
                    static_cast<double>(kScenarios),
                1),
           cell(peak, 3), cell(pd2_misses),
           cell(static_cast<double>(dvq_max) /
                static_cast<double>(kTicksPerSlot))});
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: greedy admission packs close to M; zero "
               "PD2 misses; DVQ stays\nwithin one quantum — the paper's "
               "guarantees carry over to dynamic GIS systems.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("dynamic", run_bench)
