// Shared entry point for the experiment binaries.
//
// Every bench_* executable wraps its body in
//
//   int run_bench(pfair::bench::BenchContext& ctx) { ... return ok?0:1; }
//   PFAIR_BENCH_MAIN("fig2_models", run_bench)
//
// and gains a uniform command line:
//
//   --json[=PATH]   write a machine-readable report (default
//                   BENCH_<name>.json in the working directory)
//   --repeat=N      run the body N times; wall-clock min/median/max
//                   over the repetitions land in the report
//   --profile       run each repetition under the self-profiler; the
//                   final repetition's per-phase breakdown lands in the
//                   report's "profile" section and (as prof.* counters)
//                   in its metrics snapshot
//   --prom[=PATH]   dump the final metrics snapshot in Prometheus text
//                   format (default BENCH_<name>.prom)
//
// The report schema ("pfair-bench-v1") bundles the exit code, wall
// times, any scalar values the bench recorded via `ctx.value()`, the
// per-case timings (google-benchmark benches), an optional profile
// section, and a full metrics snapshot, plus `git describe` metadata
// captured at configure time — enough to diff two runs of the same
// bench across commits (see tools/pfairstat.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace pfair::bench {

/// One timed case inside a bench (google-benchmark style).
struct BenchCase {
  std::string name;
  double ns_per_op = 0.0;
  std::int64_t iterations = 0;
};

/// Handed to the bench body: a per-run metrics registry (wire it into
/// SfqOptions/DvqOptions::metrics) plus named scalar results for the
/// report.
class BenchContext {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Records a named scalar (utilization, tardiness bound, ...) for the
  /// report's "values" object.  Last write per name wins.
  void value(const std::string& name, double v);

  void add_case(BenchCase c) { cases_.push_back(std::move(c)); }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& values()
      const {
    return values_;
  }
  [[nodiscard]] const std::vector<BenchCase>& cases() const { return cases_; }

  /// True when the harness runs this repetition under --profile; benches
  /// can key extra self-measurement off it (e.g. the scaling bench's
  /// profiler-overhead assertion).
  [[nodiscard]] bool profiling() const { return profiling_; }
  void set_profiling(bool p) { profiling_ = p; }

 private:
  MetricsRegistry metrics_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<BenchCase> cases_;
  bool profiling_ = false;
};

/// Everything the report serializer needs about one finished run.
struct BenchReport {
  std::string bench;            ///< name without the bench_ prefix
  int exit_code = 0;            ///< from the final repetition
  std::vector<double> wall_ms;  ///< one entry per repetition
  const BenchContext* ctx = nullptr;  ///< final repetition's context
  bool profiled = false;              ///< ran under --profile
  prof::ProfileSnapshot profile;      ///< final repetition's spans
};

/// Serializes a report in the pfair-bench-v1 schema.
[[nodiscard]] std::string bench_report_json(const BenchReport& report);

/// Scans argv for `--json` / `--json=PATH`, removing it.  Returns the
/// output path ("" when the flag is absent); `name` supplies the
/// BENCH_<name>.json default.
[[nodiscard]] std::string extract_json_flag(int& argc, char** argv,
                                            const std::string& name);

/// The uniform main: parses --json/--repeat, times `fn` over the
/// repetitions, writes the report, and returns `fn`'s exit code.
int bench_main(int argc, char** argv, const char* name,
               int (*fn)(BenchContext&));

}  // namespace pfair::bench

#define PFAIR_BENCH_MAIN(name, fn)                        \
  int main(int argc, char** argv) {                       \
    return pfair::bench::bench_main(argc, argv, name, fn); \
  }
