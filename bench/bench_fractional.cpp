// Experiment FW1 — the paper's future work (Sec. 4): execution costs
// that are not integral multiples of the quantum.  A job of cost
// (e-1) + f quanta runs its last subtask for only the fraction f.  Under
// SFQ that remainder is structurally wasted every job; under DVQ it is
// reclaimed, at the price of (bounded) tardiness.  The bench sweeps f.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== FW1: non-integral execution costs (future work) ===\n\n";

  constexpr int kM = 4;
  GeneratorConfig cfg;
  cfg.processors = kM;
  cfg.target_util = Rational(kM);
  cfg.horizon = 40;
  cfg.weights = WeightClass::kHeavy;  // multi-subtask jobs
  cfg.seed = 23;
  const TaskSystem sys = generate_periodic(cfg);
  std::cout << sys.summary() << "\n\n";

  TextTable t;
  t.header({"tail f", "structural waste %", "DVQ makespan", "SFQ span",
            "reclaimed %", "max tard (q)", "bound ok"});
  bool ok = true;

  const SlotSchedule sfq = schedule_sfq(sys);
  const double sfq_cap = static_cast<double>(sfq.horizon()) * kM;

  for (const std::int64_t fnum : {1, 2, 3, 4}) {
    const Time tail = Time::ticks(fnum * kTicksPerSlot / 4);
    const FractionalTailYield yields(tail);

    // Structural waste: the part of the last quantum of each job that a
    // fixed-quantum scheduler cannot use.
    std::int64_t waste = 0, alloc = 0;
    for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
        waste += (kQuantum - yields.checked_cost(sys, SubtaskRef{k, s}))
                     .raw_ticks();
        alloc += kTicksPerSlot;
      }
    }

    const DvqSchedule dvq = schedule_dvq(sys, yields);
    const TardinessSummary tard = measure_tardiness(sys, dvq);
    const double reclaimed =
        100.0 * (sfq_cap - dvq.makespan().to_double() * kM) / sfq_cap;
    ok &= dvq.complete() && tard.max_ticks < kTicksPerSlot;

    t.row({cell(static_cast<double>(fnum) / 4.0, 2),
           cell(100.0 * static_cast<double>(waste) /
                    static_cast<double>(alloc),
                1),
           cell(dvq.makespan().to_double(), 2),
           cell(static_cast<double>(sfq.horizon()), 0), cell(reclaimed, 1),
           cell(tard.max_quanta()),
           tard.max_ticks < kTicksPerSlot ? "yes" : "NO"});
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: smaller tails f waste more of each job's "
               "final quantum under SFQ;\nDVQ reclaims it (reclaimed % "
               "tracks the waste) while tardiness stays below one "
               "quantum.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fractional", run_bench)
