// Experiment X2 — the utilization gap of Sec. 1: Pfair (PD2) schedules
// every task system up to total utilization M, while global EDF and
// partitioned EDF can fail well below it (around M/2 + epsilon in the
// worst case [13, 5, 4]).  Measures schedulability (fraction of random
// systems with no miss) versus utilization.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"
#include "sweep.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X2: schedulable fraction vs utilization ===\n\n";

  constexpr int kM = 4;
  constexpr std::int64_t kSeeds = 40;

  TextTable t;
  t.header({"util/M", "PD2 (global)", "partitioned Pfair", "global EDF",
            "partitioned EDF"});
  bool ok = true;

  double last_pd2 = 1.0;
  double gedf_at_full = 1.0, pedf_at_full = 1.0;
  for (const auto& [num, den] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {1, 2}, {5, 8}, {3, 4}, {7, 8}, {15, 16}, {1, 1}}) {
    pfair::bench::CountReducer pd2_ok, ppf_ok, gedf_ok, pedf_ok;
    pfair::bench::sweep_seeds(kSeeds, 3, 11, [&](std::uint64_t seed) {
      GeneratorConfig cfg;
      cfg.processors = kM;
      cfg.target_util = Rational(kM) * Rational(num, den);
      cfg.horizon = 48;
      cfg.weights = WeightClass::kMixed;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);

      // The PD2 run is audited online; a finding disqualifies it like a
      // miss would.
      InvariantAuditor auditor(sys);
      SfqOptions sopts;
      sopts.trace = &auditor;
      const SlotSchedule pd2 = schedule_sfq(sys, sopts);
      if (pd2.complete() && measure_tardiness(sys, pd2).max_ticks == 0 &&
          auditor.clean()) {
        pd2_ok.add();
      }
      if (run_global_edf(sys).all_met()) gedf_ok.add();
      const PartitionedEdfResult pr = run_partitioned_edf(sys);
      if (pr.partitioned && pr.schedule.all_met()) pedf_ok.add();
      const PartitionedPfairResult pp = run_partitioned_pfair(sys);
      if (pp.partitioned && pp.all_met) ppf_ok.add();
    });
    const auto frac = [&](std::int64_t n) {
      return static_cast<double>(n) / static_cast<double>(kSeeds);
    };
    last_pd2 = frac(pd2_ok.get());
    if (num == den) {
      gedf_at_full = frac(gedf_ok.get());
      pedf_at_full = frac(pedf_ok.get());
    }
    ok &= pd2_ok.get() == kSeeds;  // PD2 never fails at util <= M
    // Partitioned Pfair fails exactly when bin packing does.
    ok &= ppf_ok.get() == pedf_ok.get() || ppf_ok.get() >= pedf_ok.get();
    t.row({cell_ratio(num, den, 3), cell(frac(pd2_ok.get()), 2),
           cell(frac(ppf_ok.get()), 2), cell(frac(gedf_ok.get()), 2),
           cell(frac(pedf_ok.get()), 2)});
  }
  // The gap must be visible: EDF baselines lose systems at full load.
  ok &= last_pd2 == 1.0 && (gedf_at_full < 1.0 || pedf_at_full < 1.0);

  std::cout << t.str() << "\n";
  std::cout << "M=" << kM << ", " << kSeeds
            << " random mixed-weight systems per cell.\nExpected shape: "
               "the PD2 column is identically 1.00 (optimality); the EDF "
               "columns\ndecay as utilization approaches M.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("util_bound", run_bench)
