// Experiments TH1-TH3 — the paper's theorems as measurements.
//
// For a grid over processor counts, weight classes and yield regimes,
// paired runs of the same workloads under
//   PD2/SFQ (Theorem 0: optimal — zero tardiness),
//   PD2/DVQ (Theorem 3: tardiness < 1 quantum),
//   PD^B adversarial and benign (Theorem 2: tardiness <= 1 quantum),
// checking per system the Theorem 1 chain
//   tardiness(PD2-DVQ) <= ceil(tardiness(S_B(DVQ))) and <= 1 quantum.
// The table reports max tardiness in quanta per condition — the "rows"
// this paper's evaluation would print.
#include <iostream>
#include <limits>
#include <string>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"
#include "sweep.hpp"

int run_bench(pfair::bench::BenchContext& ctx) {
  using namespace pfair;
  std::cout << "=== TH1-TH3: tardiness bounds under DVQ and PD^B ===\n\n";

  struct Grid {
    int m;
    WeightClass cls;
  };
  const Grid grid[] = {
      {2, WeightClass::kMixed}, {2, WeightClass::kHeavy},
      {4, WeightClass::kMixed}, {4, WeightClass::kLight},
      {8, WeightClass::kMixed},
  };
  constexpr std::int64_t kSeeds = 40;

  TextTable t;
  t.header({"M", "class", "sfq max", "dvq max (q)", "pdb max (q)",
            "pdb benign (q)", "th1 ok", "th2 ok", "th3 ok", "audit"});
  bool all_ok = true;

  for (const Grid g : grid) {
    pfair::bench::MaxReducer sfq_max, dvq_max, pdb_max, pdbb_max;
    pfair::bench::CountReducer th1_bad, th2_bad, th3_bad, audit_bad;
    pfair::bench::sweep_seeds(kSeeds, 13, 1, [&](std::uint64_t seed) {
      GeneratorConfig cfg;
      cfg.processors = g.m;
      cfg.target_util = Rational(g.m);
      cfg.horizon = 24;
      cfg.weights = g.cls;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                  kQuantum - kTick);

      // Every production run is audited inline: the theorem columns
      // check end-state tardiness, the auditor checks the invariants
      // along the way (windows, occupancy, lag, Theorem 3's allowance).
      InvariantAuditor sfq_audit(sys);
      SfqOptions sopts;
      sopts.trace = &sfq_audit;
      const std::int64_t sfq =
          measure_tardiness(sys, schedule_sfq(sys, sopts)).max_ticks;
      sfq_max.raise(sfq);
      if (!sfq_audit.clean()) audit_bad.add();

      InvariantAuditor dvq_audit(sys);
      DvqOptions dopts;
      dopts.trace = &dvq_audit;
      const DvqSchedule dvq = schedule_dvq(sys, yields, dopts);
      const std::int64_t dvq_t = measure_tardiness(sys, dvq).max_ticks;
      dvq_max.raise(dvq_t);
      if (dvq_t >= kTicksPerSlot) th3_bad.add();  // Theorem 3
      if (!dvq_audit.clean()) audit_bad.add();

      // Theorem 1: against the S_B constructed from this very DVQ run.
      const SbConstruction sbc = build_sb(sys, dvq);
      const std::int64_t sb_t =
          measure_tardiness(sbc.charged_system, sbc.sb).max_ticks;
      const std::int64_t sb_ceil =
          (sb_t + kTicksPerSlot - 1) / kTicksPerSlot * kTicksPerSlot;
      if (dvq_t > sb_ceil) th1_bad.add();

      PdbOptions po;
      const std::int64_t pdb_t =
          measure_tardiness(sys, schedule_pdb(sys, po)).max_ticks;
      pdb_max.raise(pdb_t);
      if (pdb_t > kTicksPerSlot) th2_bad.add();  // Theorem 2

      po.mode = PdbMode::kBenign;
      pdbb_max.raise(measure_tardiness(sys, schedule_pdb(sys, po)).max_ticks);
    });

    const bool ok = th1_bad.zero() && th2_bad.zero() && th3_bad.zero() &&
                    sfq_max.get() == 0 && audit_bad.zero();
    all_ok &= ok;
    auto q = [](std::int64_t ticks) {
      return cell(static_cast<double>(ticks) /
                  static_cast<double>(kTicksPerSlot));
    };
    t.row({cell(static_cast<std::int64_t>(g.m)), to_string(g.cls),
           q(sfq_max.get()), q(dvq_max.get()), q(pdb_max.get()),
           q(pdbb_max.get()), th1_bad.zero() ? "yes" : "NO",
           th2_bad.zero() ? "yes" : "NO", th3_bad.zero() ? "yes" : "NO",
           audit_bad.zero() ? "clean" : "FINDINGS"});
  }
  std::cout << t.str() << "\n";
  std::cout << kSeeds << " fully-utilized systems per row; yields: "
               "Bernoulli(1/2) in [0.5, 1) quanta; every sfq/dvq run "
               "audited online\n";

  // --- TH-FF: the same theorems at a horizon only fast-forward makes
  // cheap.  20 hyperperiods (generator periods divide 240) through the
  // compressed cyclic drivers; the tardiness analyses consume the
  // CycleSchedule directly, so no million-placement materialization
  // happens.  Theorem 0 (SFQ exact) and Theorem 3 (DVQ < 1 quantum,
  // deterministic full-quantum yields) must hold over the whole run.
  constexpr std::int64_t kFfHorizon = 4800;
  std::cout << "\n=== TH-FF: theorems at horizon " << kFfHorizon
            << " via cycle fast-forward ===\n\n";
  TextTable fft;
  fft.header({"M", "sfq max (q)", "dvq max (q)", "engaged", "th0 ok",
              "th3 ok"});
  bool ff_ok = true;
  for (const int m : {2, 4, 8}) {
    constexpr std::int64_t kFfSeeds = 10;
    pfair::bench::MaxReducer sfq_max(std::numeric_limits<std::int64_t>::min());
    pfair::bench::MaxReducer dvq_max(std::numeric_limits<std::int64_t>::min());
    pfair::bench::CountReducer not_engaged;
    pfair::bench::sweep_seeds(kFfSeeds, 13, 101, [&](std::uint64_t seed) {
      GeneratorConfig cfg;
      cfg.processors = m;
      cfg.target_util = Rational(m);
      cfg.horizon = kFfHorizon;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);

      const CycleSchedule sfq = schedule_sfq_cyclic(sys);
      if (!sfq.stats().engaged) not_engaged.add();
      sfq_max.raise(measure_tardiness(sys, sfq).max_ticks);

      const FullQuantumYield yields;
      const DvqCycleSchedule dvq = schedule_dvq_cyclic(sys, yields);
      if (!dvq.stats().engaged) not_engaged.add();
      dvq_max.raise(measure_tardiness(sys, dvq).max_ticks);
    });
    const bool th0 = sfq_max.get() == 0;
    const bool th3 = dvq_max.get() < kTicksPerSlot;
    ff_ok &= th0 && th3 && not_engaged.zero();
    auto q = [](std::int64_t ticks) {
      return cell(static_cast<double>(ticks) /
                  static_cast<double>(kTicksPerSlot));
    };
    fft.row({cell(static_cast<std::int64_t>(m)), q(sfq_max.get()),
             q(dvq_max.get()), not_engaged.zero() ? "all" : "SOME NOT",
             th0 ? "yes" : "NO", th3 ? "yes" : "NO"});
    const std::string tag = std::to_string(m);
    ctx.value("thff.sfq_max_q." + tag,
              static_cast<double>(sfq_max.get()) /
                  static_cast<double>(kTicksPerSlot));
    ctx.value("thff.dvq_max_q." + tag,
              static_cast<double>(dvq_max.get()) /
                  static_cast<double>(kTicksPerSlot));
  }
  std::cout << fft.str() << "\n";
  all_ok &= ff_ok;

  std::cout << "shape check (all theorem columns hold, SFQ exact, audits "
               "clean, fast-forward engaged and exact at long horizon): "
            << (all_ok ? "PASS" : "FAIL") << '\n';
  return all_ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("theorem_tardiness", run_bench)
