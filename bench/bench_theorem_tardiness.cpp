// Experiments TH1-TH3 — the paper's theorems as measurements.
//
// For a grid over processor counts, weight classes and yield regimes,
// paired runs of the same workloads under
//   PD2/SFQ (Theorem 0: optimal — zero tardiness),
//   PD2/DVQ (Theorem 3: tardiness < 1 quantum),
//   PD^B adversarial and benign (Theorem 2: tardiness <= 1 quantum),
// checking per system the Theorem 1 chain
//   tardiness(PD2-DVQ) <= ceil(tardiness(S_B(DVQ))) and <= 1 quantum.
// The table reports max tardiness in quanta per condition — the "rows"
// this paper's evaluation would print.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"
#include "sweep.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== TH1-TH3: tardiness bounds under DVQ and PD^B ===\n\n";

  struct Grid {
    int m;
    WeightClass cls;
  };
  const Grid grid[] = {
      {2, WeightClass::kMixed}, {2, WeightClass::kHeavy},
      {4, WeightClass::kMixed}, {4, WeightClass::kLight},
      {8, WeightClass::kMixed},
  };
  constexpr std::int64_t kSeeds = 40;

  TextTable t;
  t.header({"M", "class", "sfq max", "dvq max (q)", "pdb max (q)",
            "pdb benign (q)", "th1 ok", "th2 ok", "th3 ok", "audit"});
  bool all_ok = true;

  for (const Grid g : grid) {
    pfair::bench::MaxReducer sfq_max, dvq_max, pdb_max, pdbb_max;
    pfair::bench::CountReducer th1_bad, th2_bad, th3_bad, audit_bad;
    pfair::bench::sweep_seeds(kSeeds, 13, 1, [&](std::uint64_t seed) {
      GeneratorConfig cfg;
      cfg.processors = g.m;
      cfg.target_util = Rational(g.m);
      cfg.horizon = 24;
      cfg.weights = g.cls;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      const BernoulliYield yields(seed, 1, 2, Time::ticks(kTicksPerSlot / 2),
                                  kQuantum - kTick);

      // Every production run is audited inline: the theorem columns
      // check end-state tardiness, the auditor checks the invariants
      // along the way (windows, occupancy, lag, Theorem 3's allowance).
      InvariantAuditor sfq_audit(sys);
      SfqOptions sopts;
      sopts.trace = &sfq_audit;
      const std::int64_t sfq =
          measure_tardiness(sys, schedule_sfq(sys, sopts)).max_ticks;
      sfq_max.raise(sfq);
      if (!sfq_audit.clean()) audit_bad.add();

      InvariantAuditor dvq_audit(sys);
      DvqOptions dopts;
      dopts.trace = &dvq_audit;
      const DvqSchedule dvq = schedule_dvq(sys, yields, dopts);
      const std::int64_t dvq_t = measure_tardiness(sys, dvq).max_ticks;
      dvq_max.raise(dvq_t);
      if (dvq_t >= kTicksPerSlot) th3_bad.add();  // Theorem 3
      if (!dvq_audit.clean()) audit_bad.add();

      // Theorem 1: against the S_B constructed from this very DVQ run.
      const SbConstruction sbc = build_sb(sys, dvq);
      const std::int64_t sb_t =
          measure_tardiness(sbc.charged_system, sbc.sb).max_ticks;
      const std::int64_t sb_ceil =
          (sb_t + kTicksPerSlot - 1) / kTicksPerSlot * kTicksPerSlot;
      if (dvq_t > sb_ceil) th1_bad.add();

      PdbOptions po;
      const std::int64_t pdb_t =
          measure_tardiness(sys, schedule_pdb(sys, po)).max_ticks;
      pdb_max.raise(pdb_t);
      if (pdb_t > kTicksPerSlot) th2_bad.add();  // Theorem 2

      po.mode = PdbMode::kBenign;
      pdbb_max.raise(measure_tardiness(sys, schedule_pdb(sys, po)).max_ticks);
    });

    const bool ok = th1_bad.zero() && th2_bad.zero() && th3_bad.zero() &&
                    sfq_max.get() == 0 && audit_bad.zero();
    all_ok &= ok;
    auto q = [](std::int64_t ticks) {
      return cell(static_cast<double>(ticks) /
                  static_cast<double>(kTicksPerSlot));
    };
    t.row({cell(static_cast<std::int64_t>(g.m)), to_string(g.cls),
           q(sfq_max.get()), q(dvq_max.get()), q(pdb_max.get()),
           q(pdbb_max.get()), th1_bad.zero() ? "yes" : "NO",
           th2_bad.zero() ? "yes" : "NO", th3_bad.zero() ? "yes" : "NO",
           audit_bad.zero() ? "clean" : "FINDINGS"});
  }
  std::cout << t.str() << "\n";
  std::cout << kSeeds << " fully-utilized systems per row; yields: "
               "Bernoulli(1/2) in [0.5, 1) quanta; every sfq/dvq run "
               "audited online\n";
  std::cout << "shape check (all theorem columns hold, SFQ exact, audits "
               "clean): "
            << (all_ok ? "PASS" : "FAIL") << '\n';
  return all_ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("theorem_tardiness", run_bench)
