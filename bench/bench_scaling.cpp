// Experiment P1 — per-decision scheduling cost vs task count.
//
// Sweeps n over 64..16384 light-weight tasks and times the optimized
// simulators (calendar / event heaps + packed priority keys) against the
// retained naive references, which re-scan all n tasks at every decision
// (the pre-optimization hot path).  Expected shape: the optimized cost
// per decision is O(changes), so the speedup grows roughly linearly with
// n; the shape check requires >= 5x at n = 16384 and bit-identical
// schedules at every point.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

using namespace pfair;

constexpr std::int64_t kHorizon = 96;

TaskSystem make_scaling_system(std::int64_t n) {
  // Light weights from a small denominator set: per-slot ready sets stay
  // a small fraction of n, which is exactly the regime where a full
  // rescan wastes the most work.
  constexpr std::int64_t kDens[] = {16, 24, 32, 48, 64};
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  Rational util(0);
  for (std::int64_t i = 0; i < n; ++i) {
    const Weight w(1, kDens[i % 5]);
    util += w.value();
    tasks.push_back(Task::periodic("t" + std::to_string(i), w, kHorizon));
  }
  const auto procs = static_cast<int>(util.ceil());
  return TaskSystem(std::move(tasks), procs);
}

template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_sfq(const SlotSchedule& a, const SlotSchedule& b,
              const TaskSystem& sys) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (a.placement(ref).slot != b.placement(ref).slot ||
          a.placement(ref).proc != b.placement(ref).proc) {
        return false;
      }
    }
  }
  return true;
}

bool same_dvq(const DvqSchedule& a, const DvqSchedule& b,
              const TaskSystem& sys) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (a.placement(ref).start != b.placement(ref).start ||
          a.placement(ref).proc != b.placement(ref).proc) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int run_bench(pfair::bench::BenchContext& ctx) {
  std::cout << "=== P1: scheduling cost vs task count ===\n\n";

  TextTable t;
  t.header({"n", "procs", "subtasks", "sfq ref (ms)", "sfq fast (ms)",
            "sfq x", "dvq ref (ms)", "dvq fast (ms)", "dvq x", "identical"});

  bool all_identical = true;
  double sfq_speedup_max_n = 0.0, dvq_speedup_max_n = 0.0;

  for (const std::int64_t n : {64L, 256L, 1024L, 4096L, 16384L}) {
    const TaskSystem sys = make_scaling_system(n);
    // Small cases cost microseconds; take the min over many repetitions
    // so scheduler noise on a loaded box cannot masquerade as cost.
    const int reps = n <= 256 ? 15 : n <= 4096 ? 5 : 2;

    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    SlotSchedule sfq_ref(sys), sfq_fast(sys);
    const double sfq_ref_ms =
        best_ms(reps, [&] { sfq_ref = schedule_sfq_reference(sys, opts); });
    const double sfq_fast_ms =
        best_ms(reps, [&] { sfq_fast = schedule_sfq(sys, opts); });

    const BernoulliYield yields(static_cast<std::uint64_t>(n) + 5, 1, 2,
                                Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    DvqOptions dopts;
    dopts.horizon_limit = kHorizon + 8;
    DvqSchedule dvq_ref(sys), dvq_fast(sys);
    const double dvq_ref_ms = best_ms(
        reps, [&] { dvq_ref = schedule_dvq_reference(sys, yields, dopts); });
    const double dvq_fast_ms =
        best_ms(reps, [&] { dvq_fast = schedule_dvq(sys, yields, dopts); });

    const bool identical =
        same_sfq(sfq_ref, sfq_fast, sys) && same_dvq(dvq_ref, dvq_fast, sys);
    all_identical &= identical;

    const double sfq_x = sfq_ref_ms / std::max(sfq_fast_ms, 1e-9);
    const double dvq_x = dvq_ref_ms / std::max(dvq_fast_ms, 1e-9);
    if (n == 16384) {
      sfq_speedup_max_n = sfq_x;
      dvq_speedup_max_n = dvq_x;
    }

    const std::string tag = std::to_string(n);
    ctx.value("sfq.ref_ms." + tag, sfq_ref_ms);
    ctx.value("sfq.fast_ms." + tag, sfq_fast_ms);
    ctx.value("sfq.speedup." + tag, sfq_x);
    ctx.value("dvq.ref_ms." + tag, dvq_ref_ms);
    ctx.value("dvq.fast_ms." + tag, dvq_fast_ms);
    ctx.value("dvq.speedup." + tag, dvq_x);
    for (const auto& [name, ms] :
         {std::pair<const char*, double>{"sfq_fast/", sfq_fast_ms},
          {"sfq_ref/", sfq_ref_ms},
          {"dvq_fast/", dvq_fast_ms},
          {"dvq_ref/", dvq_ref_ms}}) {
      pfair::bench::BenchCase c;
      c.name = std::string(name) + tag;
      c.ns_per_op = ms * 1e6;
      c.iterations = reps;
      ctx.add_case(std::move(c));
    }

    t.row({cell(n), cell(static_cast<std::int64_t>(sys.processors())),
           cell(sys.total_subtasks()), cell(sfq_ref_ms, 2),
           cell(sfq_fast_ms, 2), cell(sfq_x, 1), cell(dvq_ref_ms, 2),
           cell(dvq_fast_ms, 2), cell(dvq_x, 1), identical ? "yes" : "NO"});
  }

  std::cout << t.str() << "\n";
  std::cout << "horizon " << kHorizon << " slots; fast = incremental "
            << "(calendar/event heaps + packed keys), ref = naive rescan\n";
  const bool ok = all_identical &&
                  (sfq_speedup_max_n >= 5.0 || dvq_speedup_max_n >= 5.0);
  std::cout << "shape check (bit-identical everywhere, >=5x at n=16384): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("scaling", run_bench)
