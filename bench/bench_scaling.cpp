// Experiment P1 — per-decision scheduling cost vs task count.
//
// Sweeps n over 64..16384 light-weight tasks and times the optimized
// simulators (calendar / event heaps + packed priority keys) against the
// retained naive references, which re-scan all n tasks at every decision
// (the pre-optimization hot path).  Expected shape: the optimized cost
// per decision is O(changes), so the speedup grows roughly linearly with
// n; the shape check requires >= 5x at n = 16384 and bit-identical
// schedules at every point.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"
#include "sweep.hpp"

namespace {

using namespace pfair;

constexpr std::int64_t kHorizon = 96;
// The construction sweep materializes far past the scheduling horizon:
// the point is the cost of building the subtask sequences themselves.
constexpr std::int64_t kConstructionHorizon = 1024;
// The cycle fast-forward sweep: 50 hyperperiods (lcm of kDens = 192) so
// the cyclic drivers have a long steady-state region to warp over.
constexpr std::int64_t kCycleHorizon = 9600;

// Light weights from a small denominator set: per-slot ready sets stay
// a small fraction of n, which is exactly the regime where a full
// rescan wastes the most work.
constexpr std::int64_t kDens[] = {16, 24, 32, 48, 64};

std::vector<Task> build_tasks(std::int64_t n, std::int64_t horizon,
                              bool eager, WindowTableCache* cache) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Weight w(1, kDens[i % 5]);
    std::string name = "t" + std::to_string(i);
    tasks.push_back(
        eager ? Task::periodic_phased_eager(std::move(name), w, 0, horizon)
              : Task::periodic_phased(std::move(name), w, 0, horizon, cache));
  }
  return tasks;
}

TaskSystem make_scaling_system(std::int64_t n) {
  std::vector<Task> tasks = build_tasks(n, kHorizon, /*eager=*/false,
                                        /*cache=*/nullptr);
  Rational util(0);
  for (const Task& t : tasks) util += t.weight().value();
  const auto procs = static_cast<int>(util.ceil());
  return TaskSystem(std::move(tasks), procs);
}

template <typename Fn>
double best_ms(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_sfq(const SlotSchedule& a, const SlotSchedule& b,
              const TaskSystem& sys) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (a.placement(ref).slot != b.placement(ref).slot ||
          a.placement(ref).proc != b.placement(ref).proc) {
        return false;
      }
    }
  }
  return true;
}

bool same_dvq(const DvqSchedule& a, const DvqSchedule& b,
              const TaskSystem& sys) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (a.placement(ref).start != b.placement(ref).start ||
          a.placement(ref).proc != b.placement(ref).proc) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int run_bench(pfair::bench::BenchContext& ctx) {
  std::cout << "=== P1: scheduling cost vs task count ===\n\n";

  TextTable t;
  t.header({"n", "procs", "subtasks", "sfq ref (ms)", "sfq fast (ms)",
            "arena (ms)", "scalar (ms)", "sfq x", "dvq ref (ms)",
            "dvq fast (ms)", "dvq x", "identical"});

  bool all_identical = true;
  double sfq_speedup_max_n = 0.0, dvq_speedup_max_n = 0.0;
  double arena_vs_fast_max_n = 0.0;

  for (const std::int64_t n : {64L, 256L, 1024L, 4096L, 16384L}) {
    const TaskSystem sys = make_scaling_system(n);
    // Small cases cost microseconds; take the min over many repetitions
    // so scheduler noise on a loaded box cannot masquerade as cost.
    const int reps = n <= 256 ? 15 : n <= 4096 ? 5 : 2;

    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    SlotSchedule sfq_ref(sys), sfq_fast(sys);
    const double sfq_ref_ms =
        best_ms(reps, [&] { sfq_ref = schedule_sfq_reference(sys, opts); });
    const double sfq_fast_ms =
        best_ms(reps, [&] { sfq_fast = schedule_sfq(sys, opts); });

    // SIMD+arena leg: the same decision path, but with working state in
    // a reused bump arena and placements written into a preallocated
    // schedule — the steady-state per-call cost (the arena reset is part
    // of it).  The forced-scalar leg reruns it with every simd kernel
    // routed to the portable implementation; both must be bit-identical
    // to the heap-allocating run (and to the naive reference).
    Arena arena;
    SfqOptions aopts = opts;
    aopts.arena = &arena;
    SlotSchedule sfq_arena(sys), sfq_scalar(sys);
    const double sfq_arena_ms = best_ms(reps, [&] {
      arena.reset();
      schedule_sfq_into(sys, aopts, sfq_arena);
    });
    simd::set_force_scalar(true);
    const double sfq_scalar_ms = best_ms(reps, [&] {
      arena.reset();
      schedule_sfq_into(sys, aopts, sfq_scalar);
    });
    simd::set_force_scalar(false);

    const BernoulliYield yields(static_cast<std::uint64_t>(n) + 5, 1, 2,
                                Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    DvqOptions dopts;
    dopts.horizon_limit = kHorizon + 8;
    DvqSchedule dvq_ref(sys), dvq_fast(sys);
    const double dvq_ref_ms = best_ms(
        reps, [&] { dvq_ref = schedule_dvq_reference(sys, yields, dopts); });
    const double dvq_fast_ms =
        best_ms(reps, [&] { dvq_fast = schedule_dvq(sys, yields, dopts); });

    const bool identical =
        same_sfq(sfq_ref, sfq_fast, sys) && same_sfq(sfq_ref, sfq_arena, sys) &&
        same_sfq(sfq_ref, sfq_scalar, sys) && same_dvq(dvq_ref, dvq_fast, sys);
    all_identical &= identical;

    const double sfq_x = sfq_ref_ms / std::max(sfq_fast_ms, 1e-9);
    const double dvq_x = dvq_ref_ms / std::max(dvq_fast_ms, 1e-9);
    if (n == 16384) {
      sfq_speedup_max_n = sfq_x;
      dvq_speedup_max_n = dvq_x;
      arena_vs_fast_max_n = sfq_arena_ms / std::max(sfq_fast_ms, 1e-9);
    }

    const std::string tag = std::to_string(n);
    ctx.value("sfq.ref_ms." + tag, sfq_ref_ms);
    ctx.value("sfq.fast_ms." + tag, sfq_fast_ms);
    ctx.value("sfq.arena_ms." + tag, sfq_arena_ms);
    ctx.value("sfq.scalar_ms." + tag, sfq_scalar_ms);
    ctx.value("sfq.speedup." + tag, sfq_x);
    ctx.value("dvq.ref_ms." + tag, dvq_ref_ms);
    ctx.value("dvq.fast_ms." + tag, dvq_fast_ms);
    ctx.value("dvq.speedup." + tag, dvq_x);
    for (const auto& [name, ms] :
         {std::pair<const char*, double>{"sfq_fast/", sfq_fast_ms},
          {"sfq_ref/", sfq_ref_ms},
          {"sfq_arena/", sfq_arena_ms},
          {"sfq_scalar/", sfq_scalar_ms},
          {"dvq_fast/", dvq_fast_ms},
          {"dvq_ref/", dvq_ref_ms}}) {
      pfair::bench::BenchCase c;
      c.name = std::string(name) + tag;
      c.ns_per_op = ms * 1e6;
      c.iterations = reps;
      ctx.add_case(std::move(c));
    }

    t.row({cell(n), cell(static_cast<std::int64_t>(sys.processors())),
           cell(sys.total_subtasks()), cell(sfq_ref_ms, 2),
           cell(sfq_fast_ms, 2), cell(sfq_arena_ms, 2), cell(sfq_scalar_ms, 2),
           cell(sfq_x, 1), cell(dvq_ref_ms, 2), cell(dvq_fast_ms, 2),
           cell(dvq_x, 1), identical ? "yes" : "NO"});
  }

  std::cout << t.str() << "\n";
  std::cout << "horizon " << kHorizon << " slots; fast = incremental "
            << "(calendar/event heaps + packed keys), ref = naive rescan\n";

  // --- Auditor overhead: invariant checking on the production path ---
  // The auditor's event mask fits in kDecisionTraceEvents, so an
  // auditor-only run stays on the O(changes) fast path with only the
  // decision-outcome events emitted.  Required shape: < 2.5x the
  // uninstrumented runtime at n = 4096.  (The bound tracks the
  // denominator: every speedup of the plain path inflates the ratio
  // even when the audited run's absolute cost improves too, so the
  // constant was relaxed from 2x when the SIMD+staging ready queue
  // landed.)
  std::cout << "\n=== auditor overhead (n = 4096) ===\n\n";
  double audit_sfq_ratio = 0.0, audit_dvq_ratio = 0.0;
  bool audit_clean = true;
  {
    constexpr std::int64_t n = 4096;
    const TaskSystem sys = make_scaling_system(n);
    const int reps = 5;
    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    const double sfq_off =
        best_ms(reps, [&] { (void)schedule_sfq(sys, opts); });
    const double sfq_on = best_ms(reps, [&] {
      InvariantAuditor auditor(sys);
      SfqOptions aopts = opts;
      aopts.trace = &auditor;
      (void)schedule_sfq(sys, aopts);
      audit_clean &= auditor.clean();
    });
    const BernoulliYield yields(static_cast<std::uint64_t>(n) + 5, 1, 2,
                                Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    DvqOptions dopts;
    dopts.horizon_limit = kHorizon + 8;
    const double dvq_off =
        best_ms(reps, [&] { (void)schedule_dvq(sys, yields, dopts); });
    const double dvq_on = best_ms(reps, [&] {
      InvariantAuditor auditor(sys);
      DvqOptions aopts = dopts;
      aopts.trace = &auditor;
      (void)schedule_dvq(sys, yields, aopts);
      audit_clean &= auditor.clean();
    });
    audit_sfq_ratio = sfq_on / std::max(sfq_off, 1e-9);
    audit_dvq_ratio = dvq_on / std::max(dvq_off, 1e-9);
    ctx.value("audit.sfq_off_ms", sfq_off);
    ctx.value("audit.sfq_on_ms", sfq_on);
    ctx.value("audit.sfq_overhead", audit_sfq_ratio);
    ctx.value("audit.dvq_off_ms", dvq_off);
    ctx.value("audit.dvq_on_ms", dvq_on);
    ctx.value("audit.dvq_overhead", audit_dvq_ratio);
    TextTable at;
    at.header({"model", "off (ms)", "audited (ms)", "ratio", "clean"});
    at.row({"sfq", cell(sfq_off, 2), cell(sfq_on, 2),
            cell(audit_sfq_ratio, 2), audit_clean ? "yes" : "NO"});
    at.row({"dvq", cell(dvq_off, 2), cell(dvq_on, 2),
            cell(audit_dvq_ratio, 2), audit_clean ? "yes" : "NO"});
    std::cout << at.str() << "\n";
  }

  // --- Scheduler-quality counters (n = 4096) ---
  // Incremental counters maintained on the fast path, checked against
  // the O(schedule) offline recount; the numbers land in the report so
  // the perf guard can track preemption/migration behavior over time.
  std::cout << "\n=== scheduler-quality counters (n = 4096) ===\n\n";
  bool quality_match = true;
  {
    constexpr std::int64_t n = 4096;
    const TaskSystem sys = make_scaling_system(n);

    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    QualityCounters sq;
    opts.quality = &sq;
    const SlotSchedule ssched = schedule_sfq(sys, opts);
    const QualityCounters sref = recount_quality(sys, ssched);
    quality_match &= sq == sref;

    const BernoulliYield yields(static_cast<std::uint64_t>(n) + 5, 1, 2,
                                Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    DvqOptions dopts;
    dopts.horizon_limit = kHorizon + 8;
    QualityCounters dq;
    dopts.quality = &dq;
    const DvqSchedule dsched = schedule_dvq(sys, yields, dopts);
    const QualityCounters dref = recount_quality(sys, dsched);
    quality_match &= dq == dref;

    publish_quality(sq, ctx.metrics(), "sched.quality.sfq");
    publish_quality(dq, ctx.metrics(), "sched.quality.dvq");
    ctx.value("quality.sfq.preemptions",
              static_cast<double>(sq.preemptions));
    ctx.value("quality.sfq.migrations", static_cast<double>(sq.migrations));
    ctx.value("quality.sfq.idle_slots", static_cast<double>(sq.idle_slots));
    ctx.value("quality.sfq.context_switches",
              static_cast<double>(sq.context_switches));
    ctx.value("quality.dvq.preemptions",
              static_cast<double>(dq.preemptions));
    ctx.value("quality.dvq.migrations", static_cast<double>(dq.migrations));
    ctx.value("quality.dvq.idle_slots", static_cast<double>(dq.idle_slots));
    ctx.value("quality.dvq.context_switches",
              static_cast<double>(dq.context_switches));

    TextTable qt;
    qt.header({"model", "preempt", "migrate", "idle", "ctx-switch",
               "decisions", "recount"});
    qt.row({"sfq", cell(sq.preemptions), cell(sq.migrations),
            cell(sq.idle_slots), cell(sq.context_switches),
            cell(sq.decision_points), sq == sref ? "match" : "MISMATCH"});
    qt.row({"dvq", cell(dq.preemptions), cell(dq.migrations),
            cell(dq.idle_slots), cell(dq.context_switches),
            cell(dq.decision_points), dq == dref ? "match" : "MISMATCH"});
    std::cout << qt.str() << "\n";
  }

  // --- Profiler overhead (n = 4096, only under --profile) ---
  // Same workload with span recording suspended (ProfScope(nullptr))
  // vs recording into the harness profiler.  Spans are two TSC reads
  // plus a ring store, a few hundred per run here, so the ratio must
  // stay under 1.05.
  double prof_sfq_ratio = 1.0, prof_dvq_ratio = 1.0;
  if (ctx.profiling()) {
    std::cout << "\n=== profiler overhead (n = 4096) ===\n\n";
    constexpr std::int64_t n = 4096;
    const TaskSystem sys = make_scaling_system(n);
    // Off/on samples are interleaved (one pair per rep) so a background
    // load burst hits both sides instead of skewing whichever leg ran
    // while it lasted; best-of keeps the quiet samples.
    const int reps = 11;
    auto best_pair = [&](auto&& off_fn, auto&& on_fn) {
      std::pair<double, double> best{0.0, 0.0};
      for (int r = 0; r < reps; ++r) {
        const double off = best_ms(1, off_fn);
        const double on = best_ms(1, on_fn);
        if (r == 0 || off < best.first) best.first = off;
        if (r == 0 || on < best.second) best.second = on;
      }
      return best;
    };
    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    const auto [sfq_off, sfq_on] = best_pair(
        [&] {
          prof::ProfScope off(nullptr);
          (void)schedule_sfq(sys, opts);
        },
        [&] { (void)schedule_sfq(sys, opts); });
    const BernoulliYield yields(static_cast<std::uint64_t>(n) + 5, 1, 2,
                                Time::ticks(kTicksPerSlot / 2),
                                kQuantum - kTick);
    DvqOptions dopts;
    dopts.horizon_limit = kHorizon + 8;
    const auto [dvq_off, dvq_on] = best_pair(
        [&] {
          prof::ProfScope off(nullptr);
          (void)schedule_dvq(sys, yields, dopts);
        },
        [&] { (void)schedule_dvq(sys, yields, dopts); });
    prof_sfq_ratio = sfq_on / std::max(sfq_off, 1e-9);
    prof_dvq_ratio = dvq_on / std::max(dvq_off, 1e-9);
    ctx.value("prof.sfq_off_ms", sfq_off);
    ctx.value("prof.sfq_on_ms", sfq_on);
    ctx.value("prof.sfq_overhead", prof_sfq_ratio);
    ctx.value("prof.dvq_off_ms", dvq_off);
    ctx.value("prof.dvq_on_ms", dvq_on);
    ctx.value("prof.dvq_overhead", prof_dvq_ratio);
    TextTable pt;
    pt.header({"model", "off (ms)", "profiled (ms)", "ratio"});
    pt.row({"sfq", cell(sfq_off, 3), cell(sfq_on, 3),
            cell(prof_sfq_ratio, 3)});
    pt.row({"dvq", cell(dvq_off, 3), cell(dvq_on, 3),
            cell(prof_dvq_ratio, 3)});
    std::cout << pt.str() << "\n";
  }

  // --- Construction: flyweight window tables vs eager materialization ---
  // Times the pre-flyweight construction path (every subtask built and
  // validated) against the flyweight one (per task: a count plus a shared
  // table, built once per distinct rate — the fresh local cache inside the
  // timed region charges the table builds to the flyweight side).
  std::cout << "\n=== construction: flyweight tables vs eager "
            << "materialization (horizon " << kConstructionHorizon
            << ") ===\n\n";
  TextTable ct;
  ct.header({"n", "subtasks", "eager (ms)", "fly (ms)", "x", "eager (KiB)",
             "fly (KiB)", "mem x", "identical"});
  double construct_speedup_max_n = 0.0, construct_mem_ratio_max_n = 0.0;
  bool construction_identical = true;
  for (const std::int64_t n : {4096L, 16384L}) {
    const int reps = 3;
    std::int64_t sink = 0;
    const double eager_ms = best_ms(reps, [&] {
      const std::vector<Task> tasks =
          build_tasks(n, kConstructionHorizon, /*eager=*/true, nullptr);
      sink += tasks.back().num_subtasks();
    });
    const double fly_ms = best_ms(reps, [&] {
      WindowTableCache cache;
      const std::vector<Task> tasks =
          build_tasks(n, kConstructionHorizon, /*eager=*/false, &cache);
      sink += tasks.back().num_subtasks();
    });
    PFAIR_ASSERT(sink > 0);

    Rational util(0);
    for (std::int64_t i = 0; i < n; ++i) util += Rational(1, kDens[i % 5]);
    const auto procs = static_cast<int>(util.ceil());
    WindowTableCache cache;
    const TaskSystem fly_sys(
        build_tasks(n, kConstructionHorizon, false, &cache), procs);
    const TaskSystem eager_sys(
        build_tasks(n, kConstructionHorizon, true, nullptr), procs);
    const auto eager_bytes = eager_sys.subtask_memory_bytes();
    const auto fly_bytes = fly_sys.subtask_memory_bytes();

    SfqOptions copts;
    copts.horizon_limit = kConstructionHorizon + 8;
    const bool identical = same_sfq(schedule_sfq(fly_sys, copts),
                                    schedule_sfq(eager_sys, copts), fly_sys);
    construction_identical &= identical;

    const double x = eager_ms / std::max(fly_ms, 1e-9);
    const double mem_x = static_cast<double>(eager_bytes) /
                         std::max<double>(static_cast<double>(fly_bytes), 1);
    if (n == 16384) {
      construct_speedup_max_n = x;
      construct_mem_ratio_max_n = mem_x;
    }

    const std::string tag = std::to_string(n);
    ctx.value("construction.eager_ms." + tag, eager_ms);
    ctx.value("construction.fly_ms." + tag, fly_ms);
    ctx.value("construction.speedup." + tag, x);
    ctx.value("construction.eager_bytes." + tag,
              static_cast<double>(eager_bytes));
    ctx.value("construction.fly_bytes." + tag,
              static_cast<double>(fly_bytes));
    ctx.value("construction.mem_ratio." + tag, mem_x);
    for (const auto& [name, ms] :
         {std::pair<const char*, double>{"construction/", fly_ms},
          {"construction_eager/", eager_ms}}) {
      pfair::bench::BenchCase c;
      c.name = std::string(name) + tag;
      c.ns_per_op = ms * 1e6;
      c.iterations = reps;
      ctx.add_case(std::move(c));
    }

    ct.row({cell(n), cell(fly_sys.total_subtasks()), cell(eager_ms, 2),
            cell(fly_ms, 2), cell(x, 1),
            cell(static_cast<std::int64_t>(eager_bytes / 1024)),
            cell(static_cast<std::int64_t>(fly_bytes / 1024)),
            cell(mem_x, 1), identical ? "yes" : "NO"});
  }
  std::cout << ct.str() << "\n";

  // --- Steady-state cycle fast-forward (hyperperiod skip) ---
  // Over kCycleHorizon = 50 hyperperiods the cyclic drivers simulate a
  // prefix, one cycle, and a tail, and warp over the rest; the full runs
  // (cycle_detect off) are the O(horizon) oracles.  The ff timings feed
  // the perf guard (cycle/ cases) so the compressed path stays fast.
  std::cout << "\n=== cycle fast-forward (n = 1024, horizon "
            << kCycleHorizon << ") ===\n\n";
  double cycle_sfq_speedup = 0.0, cycle_dvq_speedup = 0.0;
  bool cycle_identical = true, cycle_engaged = true;
  {
    constexpr std::int64_t n = 1024;
    std::vector<Task> tasks =
        build_tasks(n, kCycleHorizon, /*eager=*/false, /*cache=*/nullptr);
    Rational util(0);
    for (const Task& task : tasks) util += task.weight().value();
    const TaskSystem sys(std::move(tasks), static_cast<int>(util.ceil()));
    const int reps = 3;

    SfqOptions fopts;
    fopts.horizon_limit = kCycleHorizon + 8;
    fopts.cycle_detect = false;
    SlotSchedule full(sys);
    const double full_ms =
        best_ms(reps, [&] { full = schedule_sfq(sys, fopts); });
    SfqOptions copts;
    copts.horizon_limit = kCycleHorizon + 8;
    std::optional<CycleSchedule> cyc;
    const double ff_ms =
        best_ms(reps, [&] { cyc.emplace(schedule_sfq_cyclic(sys, copts)); });
    cycle_engaged &= cyc->stats().engaged;
    cycle_identical &=
        same_sfq(full, cyc->materialize(fopts.horizon_limit), sys);
    cycle_sfq_speedup = full_ms / std::max(ff_ms, 1e-9);

    const FullQuantumYield yields;
    DvqOptions dfopts;
    dfopts.horizon_limit = kCycleHorizon + 8;
    dfopts.cycle_detect = false;
    DvqSchedule dfull(sys);
    const double dfull_ms =
        best_ms(reps, [&] { dfull = schedule_dvq(sys, yields, dfopts); });
    DvqOptions dcopts;
    dcopts.horizon_limit = kCycleHorizon + 8;
    std::optional<DvqCycleSchedule> dcyc;
    const double dff_ms = best_ms(
        reps, [&] { dcyc.emplace(schedule_dvq_cyclic(sys, yields, dcopts)); });
    cycle_engaged &= dcyc->stats().engaged;
    cycle_identical &=
        same_dvq(dfull, dcyc->materialize(dfopts.horizon_limit), sys);
    cycle_dvq_speedup = dfull_ms / std::max(dff_ms, 1e-9);

    ctx.value("cycle.sfq_full_ms", full_ms);
    ctx.value("cycle.sfq_ff_ms", ff_ms);
    ctx.value("cycle.sfq_speedup", cycle_sfq_speedup);
    ctx.value("cycle.dvq_full_ms", dfull_ms);
    ctx.value("cycle.dvq_ff_ms", dff_ms);
    ctx.value("cycle.dvq_speedup", cycle_dvq_speedup);
    for (const auto& [name, ms] :
         {std::pair<const char*, double>{"cycle/ff_sfq", ff_ms},
          {"cycle/ff_dvq", dff_ms}}) {
      pfair::bench::BenchCase c;
      c.name = name;
      c.ns_per_op = ms * 1e6;
      c.iterations = reps;
      ctx.add_case(std::move(c));
    }

    TextTable cyct;
    cyct.header({"model", "full (ms)", "ff (ms)", "x", "prefix", "cycle",
                 "skipped", "identical"});
    cyct.row({"sfq", cell(full_ms, 2), cell(ff_ms, 2),
              cell(cycle_sfq_speedup, 1), cell(cyc->stats().prefix_slots),
              cell(cyc->stats().cycle_slots), cell(cyc->stats().cycles_skipped),
              cycle_identical ? "yes" : "NO"});
    cyct.row({"dvq", cell(dfull_ms, 2), cell(dff_ms, 2),
              cell(cycle_dvq_speedup, 1), cell(dcyc->stats().prefix_slots),
              cell(dcyc->stats().cycle_slots),
              cell(dcyc->stats().cycles_skipped),
              cycle_identical ? "yes" : "NO"});
    std::cout << cyct.str() << "\n";
  }

  // --- parallel_for grain: auto chunking vs per-index claims ---
  // The auto grain (8 chunks per worker) amortizes the shared cursor;
  // grain = 1 is the pre-default behavior for callers that never tuned
  // it.  Recorded as a before/after pair, not shape-checked (wall-clock
  // ratios of a contended atomic are too noisy to gate on).
  std::cout << "\n=== parallel_for grain (auto vs 1) ===\n\n";
  {
    constexpr std::int64_t kIters = 1 << 19;
    bench::MaxReducer red(std::numeric_limits<std::int64_t>::min());
    const auto body = [&](std::int64_t i) {
      red.raise((i * 2654435761LL) & 0xffff);
    };
    const double one_ms = best_ms(
        3, [&] { global_pool().parallel_for(0, kIters, body, /*grain=*/1); });
    const double auto_ms =
        best_ms(3, [&] { global_pool().parallel_for(0, kIters, body); });
    ctx.value("grain.one_ms", one_ms);
    ctx.value("grain.auto_ms", auto_ms);
    ctx.value("grain.speedup", one_ms / std::max(auto_ms, 1e-9));
    std::cout << kIters << " iterations: grain 1 " << one_ms
              << " ms -> auto grain " << auto_ms << " ms ("
              << one_ms / std::max(auto_ms, 1e-9) << "x)\n";
  }

  const bool ok = all_identical && construction_identical &&
                  cycle_identical && cycle_engaged &&
                  cycle_sfq_speedup >= 5.0 && cycle_dvq_speedup >= 5.0 &&
                  (sfq_speedup_max_n >= 5.0 || dvq_speedup_max_n >= 5.0) &&
                  arena_vs_fast_max_n < 1.15 &&
                  construct_speedup_max_n >= 5.0 &&
                  construct_mem_ratio_max_n >= 10.0 && audit_clean &&
                  audit_sfq_ratio < 2.5 && audit_dvq_ratio < 2.5 &&
                  quality_match && prof_sfq_ratio < 1.05 &&
                  prof_dvq_ratio < 1.05;
  std::cout << "shape check (bit-identical everywhere incl. arena+scalar "
            << "legs, >=5x sched at n=16384, arena leg no slower than "
            << "fast, >=5x cycle fast-forward, >=5x construction and "
            << ">=10x memory at n=16384, audit clean and < 2.5x at n=4096, "
            << "quality counters match recount, profiler < 1.05x): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("scaling", run_bench)
