// Experiment X6 — early release as the lightweight alternative to DFS's
// auxiliary scheduler (Sec. 1, related work): Chandra et al. kept
// processors busy by running *ineligible* tasks through a second
// scheduler; Anderson & Srinivasan's early-release model gets the same
// effect inside Pfair by letting a job's later subtasks become eligible
// at the job release.  Under DVQ + early release, reclaimed time can be
// spent on the same job's next subtask instead of idling.
//
// Measures makespan, idle fraction and tardiness of PD2-DVQ with and
// without the early-release transform on the same workload and yields.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== X6: early release under the DVQ model ===\n\n";

  TextTable t;
  t.header({"yield p", "makespan (plain)", "makespan (ER)", "idle % plain",
            "idle % ER", "max tard (q) plain", "max tard (q) ER"});
  bool ok = true;

  constexpr int kM = 4;
  GeneratorConfig cfg;
  cfg.processors = kM;
  cfg.target_util = Rational(kM);
  cfg.horizon = 40;
  cfg.seed = 17;
  // Multi-subtask jobs are where ER matters: use heavy tasks (e >= 2).
  cfg.weights = WeightClass::kHeavy;
  const TaskSystem plain = generate_periodic(cfg);
  const TaskSystem er = plain.with_early_release();
  std::cout << plain.summary() << "\n\n";

  for (const auto& [num, den] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {1, 4}, {1, 2}, {3, 4}}) {
    const BernoulliYield yields(31, num, den,
                                Time::ticks(kTicksPerSlot / 4),
                                Time::ticks(3 * kTicksPerSlot / 4));
    std::int64_t work = 0;
    for (std::int32_t k = 0; k < plain.num_tasks(); ++k) {
      for (std::int32_t s = 0; s < plain.task(k).num_subtasks(); ++s) {
        work += yields.checked_cost(plain, SubtaskRef{k, s}).raw_ticks();
      }
    }
    const DvqSchedule dp = schedule_dvq(plain, yields);
    const DvqSchedule de = schedule_dvq(er, yields);
    const TardinessSummary tp = measure_tardiness(plain, dp);
    const TardinessSummary te = measure_tardiness(er, de);

    auto idle = [&](const DvqSchedule& d) {
      const double cap = d.makespan().to_double() * kM;
      return 100.0 *
             (cap - static_cast<double>(work) /
                        static_cast<double>(kTicksPerSlot)) /
             cap;
    };
    // ER can only move work earlier: makespan must not grow, and both
    // runs must respect the one-quantum bound.
    ok &= de.makespan() <= dp.makespan();
    ok &= tp.max_ticks < kTicksPerSlot && te.max_ticks < kTicksPerSlot;

    t.row({cell_ratio(num, den, 2), cell(dp.makespan().to_double(), 2),
           cell(de.makespan().to_double(), 2), cell(idle(dp), 1),
           cell(idle(de), 1), cell(tp.max_quanta()),
           cell(te.max_quanta())});
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: early release shrinks (or preserves) the "
               "makespan by letting\nreclaimed time flow into the same "
               "job's next subtask; the Theorem 3 bound holds\nin both "
               "configurations.\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("er_release", run_bench)
