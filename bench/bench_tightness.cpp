// Experiment TH3-tightness — how close can PD2-DVQ tardiness get to the
// one-quantum bound?  A greedy adversarial search over per-subtask yield
// scripts (workload/adversary) pushes each random fully-utilized system
// toward its worst case; the paper's Fig. 2 system serves as the
// hand-crafted reference at exactly 1 - delta.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== TH3 tightness: adversarial yield-script search ===\n\n";
  bool ok = true;

  // Reference: the paper's own witness, hand-crafted and re-discovered.
  {
    const FigureScenario sc = fig2_scenario(kTick);
    const DvqSchedule sched = schedule_dvq(sc.system, *sc.yields);
    const std::int64_t t = measure_tardiness(sc.system, sched).max_ticks;
    std::cout << "Fig. 2 hand-crafted witness: " << t << "/"
              << kTicksPerSlot << " ticks = "
              << static_cast<double>(t) / static_cast<double>(kTicksPerSlot)
              << " quanta\n";
    ok &= t == kTicksPerSlot - 1;

    const AdversaryResult found = find_adversarial_yields(sc.system);
    std::cout << "adversarial search on the same system finds: "
              << static_cast<double>(found.max_tardiness_ticks) /
                     static_cast<double>(kTicksPerSlot)
              << " quanta in " << found.evaluations << " evaluations\n\n";
    ok &= found.max_tardiness_ticks == kTicksPerSlot - 1;
  }

  TextTable t;
  t.header({"M", "seed", "found (quanta)", "evaluations", "bound ok"});
  std::int64_t global_best = 0;
  for (const int m : {2, 3}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      GeneratorConfig cfg;
      cfg.processors = m;
      cfg.target_util = Rational(m);
      cfg.horizon = 12;
      cfg.seed = seed * 7 + static_cast<std::uint64_t>(m);
      const TaskSystem sys = generate_periodic(cfg);
      AdversaryOptions opts;
      opts.seed = seed;
      const AdversaryResult res = find_adversarial_yields(sys, opts);
      global_best = std::max(global_best, res.max_tardiness_ticks);
      ok &= res.max_tardiness_ticks < kTicksPerSlot;  // Theorem 3
      t.row({cell(static_cast<std::int64_t>(m)), cell(
                 static_cast<std::int64_t>(seed)),
             cell(static_cast<double>(res.max_tardiness_ticks) /
                  static_cast<double>(kTicksPerSlot)),
             cell(res.evaluations),
             res.max_tardiness_ticks < kTicksPerSlot ? "yes" : "NO"});
    }
  }
  std::cout << t.str() << "\n";
  std::cout << "best found across the random sweep: "
            << static_cast<double>(global_best) /
                   static_cast<double>(kTicksPerSlot)
            << " quanta\n";
  std::cout << "\nExpected shape: the search rediscovers the paper's "
               "1 - delta witness on the Fig. 2\nsystem; on random "
               "systems misses are rare (most short-horizon systems are "
               "robust)\nand the bound is never exceeded (Theorem 3)."
               "\n\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("tightness", run_bench)
