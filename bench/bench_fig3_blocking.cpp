// Experiment F3 — reproduces the phenomenon of Figure 3: *predecessor
// blocking* under PD2-DVQ, and the paper's counterfactual insets:
//   (a) the yield script produces predecessor blocking at t = 2;
//   (b) with no early yield, the blocking disappears;
// plus verification of Property PB (Lemma 1) on the blocking run.
//
// Fig. 3's exact weights are not given in the paper text; the scenario is
// a documented reconstruction with the same structure (see DESIGN.md).
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  const Time delta = Time::ticks(kTicksPerSlot / 8);
  std::cout << "=== F3: Fig. 3 — predecessor blocking under PD2-DVQ ===\n\n";
  bool ok = true;

  const FigureScenario sc = fig3_scenario(delta);
  std::cout << "tasks:\n" << describe_subtasks(sc.system) << "\n";

  RenderOptions ropts;
  ropts.chars_per_slot = 8;

  // (a) With the scripted early yield of Y_2.
  const DvqSchedule with_yield = schedule_dvq(sc.system, *sc.yields);
  std::cout << "(a) Y_2 yields " << delta.to_double()
            << " early — B_3 is predecessor-blocked at t = 2:\n"
            << render_dvq_schedule(sc.system, with_yield, ropts) << "\n";
  const BlockingReport ra = analyze_blocking(sc.system, with_yield);
  std::cout << "    eligibility-blocked: " << ra.eligibility_blocked
            << ", predecessor-blocked: " << ra.predecessor_blocked
            << ", Property PB holds: " << std::boolalpha
            << ra.property_pb_holds() << "\n\n";
  ok &= ra.predecessor_blocked > 0;
  ok &= ra.property_pb_holds();

  // (b) Counterfactual: no early yield — the inversion disappears
  // (paper's Fig. 3(b): "B_2 would not be blocked if F_3 does not yield").
  const FullQuantumYield full;
  const DvqSchedule no_yield = schedule_dvq(sc.system, full);
  std::cout << "(b) no early yields — no predecessor blocking:\n"
            << render_dvq_schedule(sc.system, no_yield, ropts) << "\n";
  const BlockingReport rb = analyze_blocking(sc.system, no_yield);
  std::cout << "    eligibility-blocked: " << rb.eligibility_blocked
            << ", predecessor-blocked: " << rb.predecessor_blocked << "\n\n";
  ok &= rb.predecessor_blocked == 0;

  // (c) Counterfactual: the predecessor (B_2) itself yields early — its
  // successor starts before the integral boundary and the blocking turns
  // into *eligibility* blocking of the subtask released at t = 2
  // (paper's Fig. 3(c): "if B_1 yields early, then D_2 is eligibility
  // blocked").
  ScriptedYield both = *sc.yields;
  both.set(SubtaskRef{1, 1}, kQuantum - delta);  // B_2
  const DvqSchedule early_pred = schedule_dvq(sc.system, both);
  std::cout << "(c) the predecessor yields early too — the inversion "
               "becomes eligibility blocking:\n"
            << render_dvq_schedule(sc.system, early_pred, ropts) << "\n";
  const BlockingReport rc = analyze_blocking(sc.system, early_pred);
  std::cout << "    eligibility-blocked: " << rc.eligibility_blocked
            << ", predecessor-blocked: " << rc.predecessor_blocked
            << ", Property PB holds: " << rc.property_pb_holds() << "\n\n";
  ok &= rc.predecessor_blocked == 0;
  ok &= rc.eligibility_blocked > 0;
  ok &= rc.property_pb_holds();

  // Tardiness stays under a quantum in both runs (Theorem 3).
  ok &= measure_tardiness(sc.system, with_yield).max_ticks < kTicksPerSlot;
  ok &= measure_tardiness(sc.system, no_yield).max_ticks < kTicksPerSlot;

  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig3_blocking", run_bench)
