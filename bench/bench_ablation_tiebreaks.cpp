// Ablation A1 — how much of PD2's optimality comes from each tie-break
// (DESIGN.md decision #2).  The four policies form a ladder:
//   EPDF: deadline only;  PF: deadline + lexicographic b-bit string;
//   PD2:  deadline + b-bit + group deadline;  PD: PD2 + weight refinement.
// On fully-utilized systems the optimal three must never miss while EPDF
// eventually does (M >= 3); the bench quantifies the failure rate and
// tardiness of EPDF by weight class.
#include <atomic>
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== A1: tie-break ablation (EPDF / PF / PD / PD2) ===\n\n";

  constexpr std::int64_t kSeeds = 60;
  TextTable t;
  t.header({"M", "class", "policy", "systems missed", "max tard (q)"});
  bool ok = true;

  struct Cfg {
    int m;
    WeightClass cls;
  };
  for (const Cfg c : {Cfg{3, WeightClass::kHeavy}, Cfg{4, WeightClass::kHeavy},
                      Cfg{4, WeightClass::kMixed},
                      Cfg{8, WeightClass::kHeavy}}) {
    for (const Policy pol :
         {Policy::kEpdf, Policy::kPf, Policy::kPd, Policy::kPd2}) {
      std::atomic<std::int64_t> missed{0}, max_t{0};
      global_pool().parallel_for(0, kSeeds, [&](std::int64_t i) {
        GeneratorConfig cfg;
        cfg.processors = c.m;
        cfg.target_util = Rational(c.m);
        cfg.horizon = 30;
        cfg.weights = c.cls;
        cfg.seed = static_cast<std::uint64_t>(i) * 7 + 1;
        const TaskSystem sys = generate_periodic(cfg);
        SfqOptions so;
        so.policy = pol;
        const TardinessSummary s =
            measure_tardiness(sys, schedule_sfq(sys, so));
        if (s.max_ticks > 0 || s.unscheduled > 0) ++missed;
        std::int64_t cur = max_t.load();
        while (s.max_ticks > cur &&
               !max_t.compare_exchange_weak(cur, s.max_ticks)) {
        }
      });
      // Optimal policies must be exact.
      if (pol != Policy::kEpdf) ok &= missed.load() == 0;
      t.row({cell(static_cast<std::int64_t>(c.m)), to_string(c.cls),
             to_string(pol),
             std::to_string(missed.load()) + "/" + std::to_string(kSeeds),
             cell(static_cast<double>(max_t.load()) /
                  static_cast<double>(kTicksPerSlot))});
    }
  }
  std::cout << t.str() << "\n";
  std::cout << "Expected shape: PF/PD/PD2 rows all 0 (optimality); EPDF "
               "misses on heavy mixes\nfor M >= 3 — the tie-breaking "
               "rules are what optimality costs.\n\n";
  std::cout << "shape check (optimal policies exact): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("ablation_tiebreaks", run_bench)
