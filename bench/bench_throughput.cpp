// Experiment P2 — sustained scheduler throughput (decisions per second).
//
// The scaling bench (P1) times one schedule call; this bench measures
// the steady-state regime the arena + schedule_sfq_into API exists for:
// the same task system scheduled over and over into preallocated
// storage, with the bump arena reset between calls so no repetition
// allocates.  The figure of merit is decisions per second, where one
// decision is one subtask placement — the per-decision cost includes
// simulator construction, key precompute, the calendar walk, and the
// ready-queue work, i.e. the whole per-call pipeline.
//
// Two legs per system size:
//   * single  — one thread, one arena, back-to-back calls;
//   * allcores — one independent replica (arena + output schedule) per
//     pool worker via the existing ThreadPool, sharing the read-only
//     TaskSystem; aggregate decisions/sec across workers.
//
// Shape checks: the schedules stay bit-identical to a fresh heap-
// allocating run, the arena stops growing after warmup (steady state
// really is zero-alloc), and single-core throughput clears a very
// conservative floor (0.5M decisions/s) that only an accidental
// O(n^2) regression would miss.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

using namespace pfair;

namespace {

constexpr std::int64_t kHorizon = 96;
constexpr std::int64_t kDens[] = {16, 24, 32, 48, 64};

TaskSystem make_system(std::int64_t n) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Weight w(1, kDens[i % 5]);
    tasks.push_back(Task::periodic_phased("t" + std::to_string(i), w, 0,
                                          kHorizon, nullptr));
  }
  Rational util(0);
  for (const Task& t : tasks) util += t.weight().value();
  return TaskSystem(std::move(tasks), static_cast<int>(util.ceil()));
}

bool same_sfq(const SlotSchedule& a, const SlotSchedule& b,
              const TaskSystem& sys) {
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      const SubtaskRef ref{k, s};
      if (a.placement(ref).slot != b.placement(ref).slot ||
          a.placement(ref).proc != b.placement(ref).proc) {
        return false;
      }
    }
  }
  return true;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int run_bench(pfair::bench::BenchContext& ctx) {
  std::cout << "=== P2: sustained throughput (decisions/sec) ===\n\n";
  std::cout << "simd backend: " << simd::isa_name() << "\n\n";
  ctx.value("simd.accelerated", simd::accelerated() ? 1.0 : 0.0);

  TextTable t;
  t.header({"n", "procs", "decisions/call", "leg", "calls", "wall (ms)",
            "Mdec/s", "ns/decision"});

  bool identical = true;
  bool steady_alloc = true;
  double single_best_mdecs = 0.0;

  for (const std::int64_t n : {2048L, 16384L}) {
    const TaskSystem sys = make_system(n);
    const std::string tag = std::to_string(n);
    const auto decisions_per_call = static_cast<double>(sys.total_subtasks());
    const int calls = n <= 2048 ? 60 : 16;

    SfqOptions opts;
    opts.horizon_limit = kHorizon + 8;
    opts.cycle_detect = false;  // measure the simulator, not the warp

    // Reference for bit-identicality: fresh heap-allocating run.
    const SlotSchedule ref = schedule_sfq(sys, opts);

    // --- single-core leg ---
    Arena arena;
    SfqOptions aopts = opts;
    aopts.arena = &arena;
    SlotSchedule out(sys);
    for (int r = 0; r < 3; ++r) {  // warmup: grow the arena to high water
      arena.reset();
      schedule_sfq_into(sys, aopts, out);
    }
    identical &= same_sfq(ref, out, sys);
    const std::size_t cap_before = arena.capacity_bytes();

    const double t0 = now_ms();
    for (int r = 0; r < calls; ++r) {
      arena.reset();
      schedule_sfq_into(sys, aopts, out);
    }
    const double single_ms = now_ms() - t0;
    steady_alloc &= arena.capacity_bytes() == cap_before;
    identical &= same_sfq(ref, out, sys);

    const double single_dec = decisions_per_call * calls;
    const double single_mdecs = single_dec / (single_ms * 1e3);
    const double single_ns = single_ms * 1e6 / single_dec;
    single_best_mdecs = std::max(single_best_mdecs, single_mdecs);

    ctx.value("throughput.single.mdecs." + tag, single_mdecs);
    ctx.value("throughput.single.ns_per_decision." + tag, single_ns);
    {
      // One op = one schedule call (not one decision): per-call times
      // clear perf_guard's MIN_GUARDED_NS floor, so the case is
      // actually guarded; per-decision figures live in the values.
      pfair::bench::BenchCase c;
      c.name = "throughput/single_" + tag;
      c.ns_per_op = single_ms * 1e6 / calls;
      c.iterations = calls;
      ctx.add_case(std::move(c));
    }
    t.row({cell(n), cell(static_cast<std::int64_t>(sys.processors())),
           cell(static_cast<std::int64_t>(decisions_per_call)), "single",
           cell(static_cast<std::int64_t>(calls)), cell(single_ms, 1),
           cell(single_mdecs, 2), cell(single_ns, 1)});

    // --- all-cores leg: one replica per pool worker ---
    ThreadPool& pool = global_pool();
    const auto workers = static_cast<std::int64_t>(pool.size());
    struct Replica {
      std::optional<Arena> arena;
      std::optional<SlotSchedule> out;
      bool identical = true;
    };
    std::vector<Replica> reps(static_cast<std::size_t>(workers));
    for (Replica& r : reps) {
      r.arena.emplace();
      r.out.emplace(sys);
    }
    const int calls_per_worker = std::max(2, calls / 4);
    const double p0 = now_ms();
    pool.parallel_for(
        0, workers,
        [&](std::int64_t w) {
          Replica& r = reps[static_cast<std::size_t>(w)];
          SfqOptions wopts = opts;
          wopts.arena = &*r.arena;
          for (int i = 0; i < calls_per_worker; ++i) {
            r.arena->reset();
            schedule_sfq_into(sys, wopts, *r.out);
          }
          r.identical = same_sfq(ref, *r.out, sys);
        },
        /*grain=*/1);
    const double all_ms = now_ms() - p0;
    for (const Replica& r : reps) identical &= r.identical;

    const double all_dec =
        decisions_per_call * calls_per_worker * static_cast<double>(workers);
    const double all_mdecs = all_dec / (all_ms * 1e3);
    const double all_ns = all_ms * 1e6 / all_dec;
    ctx.value("throughput.allcores.mdecs." + tag, all_mdecs);
    ctx.value("throughput.allcores.workers", static_cast<double>(workers));
    {
      pfair::bench::BenchCase c;
      c.name = "throughput/allcores_" + tag;
      c.ns_per_op = all_ms * 1e6 / (static_cast<double>(workers) *
                                    calls_per_worker);
      c.iterations = calls_per_worker;
      ctx.add_case(std::move(c));
    }
    t.row({cell(n), cell(static_cast<std::int64_t>(sys.processors())),
           cell(static_cast<std::int64_t>(decisions_per_call)),
           "allcores(" + std::to_string(workers) + ")",
           cell(static_cast<std::int64_t>(calls_per_worker * workers)),
           cell(all_ms, 1), cell(all_mdecs, 2), cell(all_ns, 1)});
  }

  std::cout << t.str() << "\n";
  std::cout << "decision = one subtask placement; per-call pipeline = "
            << "construction + key precompute + calendar walk + ready "
            << "queue; arena reset between calls\n";

  const bool ok =
      identical && steady_alloc && single_best_mdecs >= 0.5;
  std::cout << "\nshape check (bit-identical to fresh runs, arena stops "
            << "growing after warmup, single-core >= 0.5 Mdec/s): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("throughput", run_bench)
