// Experiment F6/F7 — Figure 6 and Lemma 6: the k-compliance induction.
// Prints the PD^B schedule of the paper's Fig. 6 system with subtask
// ranks, the 0-compliant (right-shifted, PD2) schedule, and runs the full
// induction, reporting which proof mechanism (hole C1 / displacement
// C2-C3) each step used; then sweeps random systems.
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== F6: Fig. 6 — k-compliance (Lemma 6 / Theorem 2) ===\n\n";
  bool ok = true;

  const TaskSystem sys = fig6_system();

  // (a) PD^B schedule with ranks.
  PdbTrace trace;
  PdbOptions popts;
  popts.trace = &trace;
  const SlotSchedule sb = schedule_pdb(sys, popts);
  std::cout << "(a) PD^B schedule S_B (F_2 misses by one quantum):\n"
            << render_slot_schedule(sys, sb) << "\n  ranks: ";
  int r = 1;
  for (const PdbDecision& d : trace.decisions) {
    std::cout << sys.task(d.chosen.task).name()
              << sys.task(d.chosen.task).subtask(d.chosen.seq).index << "="
              << r++ << " ";
  }
  std::cout << "\n\n";

  // (b) The full induction.
  const ComplianceResult res = run_compliance(sys);
  std::cout << "(b) induction over " << res.ranks << " ranks: "
            << (res.ok ? "every intermediate schedule valid" : res.failure)
            << "\n    steps checked: " << res.steps_checked
            << ", already in place: " << res.already_placed
            << ", via hole (C1): " << res.holes_used
            << ", via displacement (C2/C3): " << res.swaps_used << "\n";
  std::cout << "    S_B max tardiness (Theorem 2): " << res.sb_max_tardiness
            << " quantum\n\n";
  ok &= res.ok && res.sb_max_tardiness <= 1;

  // (c) Random sweep — Lemma 6 exercised broadly (Fig. 7's cases arise
  // inside the displacement steps).
  TextTable table;
  table.header({"M", "class", "systems", "ok", "holes", "displacements",
                "max S_B tardiness"});
  struct Cfg {
    int m;
    WeightClass cls;
  };
  for (const Cfg c : {Cfg{2, WeightClass::kMixed}, Cfg{2, WeightClass::kHeavy},
                      Cfg{3, WeightClass::kMixed},
                      Cfg{3, WeightClass::kLight}}) {
    std::int64_t n_ok = 0, holes = 0, swaps = 0, worst = 0;
    constexpr std::int64_t kSeeds = 8;
    for (std::int64_t i = 0; i < kSeeds; ++i) {
      GeneratorConfig gc;
      gc.processors = c.m;
      gc.target_util = Rational(c.m);
      gc.horizon = 10;
      gc.weights = c.cls;
      gc.seed = static_cast<std::uint64_t>(i) * 7 + 1;
      const ComplianceResult rr = run_compliance(generate_periodic(gc));
      if (rr.ok) ++n_ok;
      holes += rr.holes_used;
      swaps += rr.swaps_used;
      worst = std::max(worst, rr.sb_max_tardiness);
    }
    ok &= n_ok == kSeeds && worst <= 1;
    table.row({cell(static_cast<std::int64_t>(c.m)), to_string(c.cls),
               cell(kSeeds), cell(n_ok), cell(holes), cell(swaps),
               cell(worst)});
  }
  std::cout << table.str() << "\n";
  std::cout << "shape check: " << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig6_compliance", run_bench)
