// Experiment F5 — Figure 5 / Lemma 4: for every subtask of a DVQ run,
// tardiness(T_i, S_DQ) <= ceil(tardiness(U_j, S_B)) where U_j is the
// Charged subtask the lemma maps T_i to.  Verified over a randomized
// sweep of fully-utilized systems and yield regimes, in parallel.
#include <atomic>
#include <iostream>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== F5: Lemma 4 — Free-subtask tardiness accounting ===\n\n";

  struct Row {
    const char* name;
    std::int64_t num, den;  // early-yield probability
  };
  const Row regimes[] = {
      {"rare yields (1/10)", 1, 10},
      {"half yields (1/2)", 1, 2},
      {"frequent yields (9/10)", 9, 10},
  };
  constexpr std::int64_t kSeeds = 60;

  TextTable table;
  table.header({"yield regime", "systems", "subtasks", "free mapped",
                "fallback", "violations", "theorem1 ok"});
  bool ok = true;

  for (const Row& regime : regimes) {
    std::atomic<std::int64_t> checked{0}, mapped{0}, fallback{0},
        violations{0}, th1_bad{0};
    global_pool().parallel_for(0, kSeeds, [&](std::int64_t i) {
      const auto seed = static_cast<std::uint64_t>(i) + 1;
      GeneratorConfig cfg;
      cfg.processors = 3;
      cfg.target_util = Rational(3);
      cfg.horizon = 16;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      const BernoulliYield yields(seed * 977, regime.num, regime.den,
                                  Time::ticks(kTicksPerSlot / 8),
                                  kQuantum - kTick);
      const DvqSchedule dvq = schedule_dvq(sys, yields);
      if (!dvq.complete()) return;
      const SbConstruction sbc = build_sb(sys, dvq);
      const Lemma4Report rep = check_lemma4(sys, dvq, sbc);
      checked += rep.checked;
      mapped += rep.free_mapped;
      fallback += rep.free_fallback;
      violations += rep.violations;
      // Theorem 1 at system granularity.
      const std::int64_t dvq_t = measure_tardiness(sys, dvq).max_ticks;
      const std::int64_t sb_t =
          measure_tardiness(sbc.charged_system, sbc.sb).max_ticks;
      const std::int64_t sb_ceil =
          (sb_t + kTicksPerSlot - 1) / kTicksPerSlot * kTicksPerSlot;
      if (dvq_t > sb_ceil) ++th1_bad;
    });
    ok &= violations.load() == 0 && th1_bad.load() == 0;
    table.row({regime.name, cell(kSeeds), cell(checked.load()),
               cell(mapped.load()), cell(fallback.load()),
               cell(violations.load()),
               th1_bad.load() == 0 ? "yes" : "NO"});
  }
  std::cout << table.str() << "\n";
  std::cout << "shape check (zero Lemma 4 violations, Theorem 1 chain): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("fig5_lemma4", run_bench)
