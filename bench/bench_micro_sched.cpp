// Experiment X4 — scheduler micro-costs, via google-benchmark: window
// arithmetic, group-deadline computation, priority comparisons, per-slot
// decision cost for every policy, PD^B overhead, DVQ event throughput.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

namespace {

using namespace pfair;

TaskSystem make_system(int m, std::int64_t horizon, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.processors = m;
  cfg.target_util = Rational(m);
  cfg.horizon = horizon;
  cfg.seed = seed;
  return generate_periodic(cfg);
}

/// Attaches per-decision cost to a whole-schedule benchmark: one
/// "decision" is one subtask placement, so ns_per_decision is the
/// wall time divided by placements — comparable across system sizes
/// where raw iteration time is not.  Shown on the console next to the
/// wall time and captured as an extra <name>/ns_per_decision case in
/// the pfair-bench-v1 report.
void report_decisions(benchmark::State& state, std::int64_t per_iter) {
  const auto total =
      static_cast<double>(state.iterations() * per_iter);
  state.SetItemsProcessed(state.iterations() * per_iter);
  state.counters["decisions_per_s"] =
      benchmark::Counter(total, benchmark::Counter::kIsRate);
  state.counters["ns_per_decision"] = benchmark::Counter(
      total, benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_WindowMath(benchmark::State& state) {
  const Weight w(8, 11);
  std::int64_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pseudo_release(w, i));
    benchmark::DoNotOptimize(pseudo_deadline(w, i));
    benchmark::DoNotOptimize(b_bit(w, i));
    if (++i > 1000000) i = 1;
  }
}
BENCHMARK(BM_WindowMath);

void BM_GroupDeadline(benchmark::State& state) {
  const Weight w(static_cast<std::int64_t>(state.range(0)),
                 static_cast<std::int64_t>(state.range(0)) + 1);
  std::int64_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(group_deadline(w, i));
    if (++i > 10000) i = 1;
  }
}
BENCHMARK(BM_GroupDeadline)->Arg(2)->Arg(11)->Arg(97);

void BM_PriorityCompare(benchmark::State& state) {
  const TaskSystem sys = make_system(4, 24, 5);
  const PriorityOrder order(sys, static_cast<Policy>(state.range(0)));
  std::vector<SubtaskRef> refs;
  for (std::int32_t k = 0; k < sys.num_tasks(); ++k) {
    for (std::int32_t s = 0; s < sys.task(k).num_subtasks(); ++s) {
      refs.push_back(SubtaskRef{k, s});
    }
  }
  std::size_t i = 0, j = refs.size() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(order.compare(refs[i], refs[j]));
    if (++i == refs.size()) i = 0;
    if (++j == refs.size()) j = 0;
  }
}
BENCHMARK(BM_PriorityCompare)
    ->Arg(static_cast<int>(Policy::kEpdf))
    ->Arg(static_cast<int>(Policy::kPf))
    ->Arg(static_cast<int>(Policy::kPd))
    ->Arg(static_cast<int>(Policy::kPd2));

void BM_SfqSchedule(benchmark::State& state) {
  const auto m = static_cast<int>(state.range(0));
  const TaskSystem sys = make_system(m, 48, 7);
  SfqOptions opts;
  opts.policy = static_cast<Policy>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_sfq(sys, opts));
  }
  report_decisions(state, sys.total_subtasks());
}
BENCHMARK(BM_SfqSchedule)
    ->Args({4, static_cast<int>(Policy::kEpdf)})
    ->Args({4, static_cast<int>(Policy::kPf)})
    ->Args({4, static_cast<int>(Policy::kPd2)})
    ->Args({8, static_cast<int>(Policy::kPd2)})
    ->Args({16, static_cast<int>(Policy::kPd2)});

void BM_SfqScheduleIndexed(benchmark::State& state) {
  const auto m = static_cast<int>(state.range(0));
  const TaskSystem sys = make_system(m, 48, 7);
  SfqOptions opts;
  opts.policy = Policy::kPd2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_sfq_indexed(sys, opts));
  }
  report_decisions(state, sys.total_subtasks());
}
BENCHMARK(BM_SfqScheduleIndexed)->Arg(4)->Arg(8)->Arg(16);

void BM_PdbSchedule(benchmark::State& state) {
  const TaskSystem sys = make_system(static_cast<int>(state.range(0)), 48, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_pdb(sys));
  }
  report_decisions(state, sys.total_subtasks());
}
BENCHMARK(BM_PdbSchedule)->Arg(4)->Arg(8);

void BM_DvqSchedule(benchmark::State& state) {
  const TaskSystem sys = make_system(static_cast<int>(state.range(0)), 48, 7);
  const BernoulliYield yields(11, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_dvq(sys, yields));
  }
  report_decisions(state, sys.total_subtasks());
}
BENCHMARK(BM_DvqSchedule)->Arg(4)->Arg(8)->Arg(16);

void BM_StaggeredSchedule(benchmark::State& state) {
  const TaskSystem sys = make_system(static_cast<int>(state.range(0)), 48, 7);
  const FullQuantumYield yields;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule_staggered(sys, yields));
  }
  report_decisions(state, sys.total_subtasks());
}
BENCHMARK(BM_StaggeredSchedule)->Arg(4)->Arg(8);

void BM_ValidityCheck(benchmark::State& state) {
  const TaskSystem sys = make_system(4, 48, 7);
  const SlotSchedule sched = schedule_sfq(sys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_slot_schedule(sys, sched));
  }
}
BENCHMARK(BM_ValidityCheck);

void BM_SbConstruction(benchmark::State& state) {
  const TaskSystem sys = make_system(4, 24, 7);
  const BernoulliYield yields(11, 1, 2, Time::ticks(kTicksPerSlot / 2),
                              kQuantum - kTick);
  const DvqSchedule dvq = schedule_dvq(sys, yields);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_sb(sys, dvq));
  }
}
BENCHMARK(BM_SbConstruction);

/// Console reporter that also captures each per-iteration run as a
/// BenchCase, so --json emits the same pfair-bench-v1 schema as the
/// plain benches.
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(pfair::bench::BenchContext& ctx)
      : benchmark::ConsoleReporter(::isatty(::fileno(stdout)) != 0
                                       ? OO_ColorTabular
                                       : OO_Tabular),
        ctx_(&ctx) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      pfair::bench::BenchCase c;
      c.name = r.benchmark_name();
      c.iterations = r.iterations;
      c.ns_per_op = r.iterations == 0
                        ? 0.0
                        : r.real_accumulated_time * 1e9 /
                              static_cast<double>(r.iterations);
      ctx_->add_case(std::move(c));
      // Whole-schedule benches also report per-decision cost (see
      // report_decisions); surface it as its own case so the perf
      // guard can track it directly.
      const auto it = r.counters.find("decisions_per_s");
      if (it != r.counters.end() && it->second.value > 0) {
        pfair::bench::BenchCase d;
        d.name = r.benchmark_name() + "/ns_per_decision";
        d.iterations = r.iterations;
        d.ns_per_op = 1e9 / it->second.value;
        ctx_->add_case(std::move(d));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  pfair::bench::BenchContext* ctx_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      pfair::bench::extract_json_flag(argc, argv, "micro_sched");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  pfair::bench::BenchContext ctx;
  CapturingReporter reporter(ctx);
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::Shutdown();

  if (!json_path.empty()) {
    pfair::bench::BenchReport report;
    report.bench = "micro_sched";
    report.wall_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    report.ctx = &ctx;
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "bench_micro_sched: cannot open " << json_path << "\n";
      return 2;
    }
    out << pfair::bench::bench_report_json(report);
    std::cerr << "bench_micro_sched: report written to " << json_path << "\n";
  }
  return 0;
}
