// Experiment TH3 (detail) — tardiness distribution under PD2-DVQ as a
// function of utilization and early-yield probability: how close the
// observed misses come to the one-quantum bound (tightness), how many
// subtasks are late at all, and the mean lateness of the late ones.
#include <atomic>
#include <iostream>
#include <mutex>

#include "pfair/pfair.hpp"

#include "bench_main.hpp"

int run_bench(pfair::bench::BenchContext&) {
  using namespace pfair;
  std::cout << "=== TH3 sweep: PD2-DVQ tardiness distribution ===\n\n";

  constexpr std::int64_t kSeeds = 50;
  constexpr int kM = 4;

  TextTable t;
  t.header({"util/M", "yield p", "late %", "mean late (q)", "p99 (q)",
            "max (q)", "bound ok"});
  bool ok = true;

  struct Cfgs {
    std::int64_t un, ud;  // utilization fraction of M
    std::int64_t yn, yd;  // yield probability
  };
  const Cfgs rows[] = {
      {1, 2, 1, 2}, {3, 4, 1, 2}, {1, 1, 1, 10},
      {1, 1, 1, 2}, {1, 1, 9, 10},
  };

  for (const Cfgs& c : rows) {
    std::mutex mu;
    std::vector<double> late_quanta;
    std::atomic<std::int64_t> total{0}, late{0}, max_ticks{0}, bad{0};
    global_pool().parallel_for(0, kSeeds, [&](std::int64_t i) {
      const auto seed = static_cast<std::uint64_t>(i) * 31 + 7;
      GeneratorConfig cfg;
      cfg.processors = kM;
      cfg.target_util = Rational(kM) * Rational(c.un, c.ud);
      cfg.horizon = 24;
      cfg.seed = seed;
      const TaskSystem sys = generate_periodic(cfg);
      const BernoulliYield yields(seed, c.yn, c.yd,
                                  Time::ticks(kTicksPerSlot / 2),
                                  kQuantum - kTick);
      const DvqSchedule dvq = schedule_dvq(sys, yields);
      if (!dvq.complete()) {
        ++bad;
        return;
      }
      std::vector<double> local;
      for (const std::int64_t v : tardiness_values_ticks(sys, dvq)) {
        ++total;
        if (v > 0) {
          ++late;
          local.push_back(static_cast<double>(v) /
                          static_cast<double>(kTicksPerSlot));
        }
        std::int64_t cur = max_ticks.load();
        while (v > cur && !max_ticks.compare_exchange_weak(cur, v)) {
        }
        if (v >= kTicksPerSlot) ++bad;
      }
      if (!local.empty()) {
        std::lock_guard<std::mutex> lk(mu);
        late_quanta.insert(late_quanta.end(), local.begin(), local.end());
      }
    });
    ok &= bad.load() == 0;

    double mean = 0, p99 = 0;
    if (!late_quanta.empty()) {
      for (const double v : late_quanta) mean += v;
      mean /= static_cast<double>(late_quanta.size());
      p99 = percentile(late_quanta, 99);
    }
    t.row({cell_ratio(c.un, c.ud, 2), cell_ratio(c.yn, c.yd, 2),
           cell(100.0 * static_cast<double>(late.load()) /
                    static_cast<double>(std::max<std::int64_t>(1, total)),
                2),
           cell(mean), cell(p99),
           cell(static_cast<double>(max_ticks.load()) /
                static_cast<double>(kTicksPerSlot)),
           bad.load() == 0 ? "yes" : "NO"});
  }
  std::cout << t.str() << "\n";
  std::cout << "M=" << kM << ", " << kSeeds
            << " systems per row.  Expected shape: misses appear only "
               "near full utilization,\nstay strictly below 1 quantum "
               "(Theorem 3), and grow with the yield rate up to a point\n"
               "(pervasive yields add slack and protect deadlines again)."
            << "\n\n";
  std::cout << "shape check (bound never exceeded): "
            << (ok ? "PASS" : "FAIL") << '\n';
  return ok ? 0 : 1;
}

PFAIR_BENCH_MAIN("tardiness_sweep", run_bench)
